"""Command-line interface: generate traces, run analyses, compare backends,
sweep whole suites in parallel, watch live event streams, build corpora,
fuzz, and bench.

The CLI is a *thin shim* over :mod:`repro.api`: every subcommand parses
argv into one of the typed request configs, hands it to
:meth:`repro.api.Session.run`, and renders the structured result -- so the
typical workflow does not require writing Python:

.. code-block:: bash

    python -m repro generate racy --threads 4 --events 500 --out trace.txt
    python -m repro analyze race-prediction trace.txt --backend incremental-csst
    python -m repro compare tso-consistency trace.txt
    python -m repro sweep --suite smoke --jobs 2 --format json
    python -m repro watch --source trace.txt --analyses race_prediction,deadlock
    python -m repro serve --source a.std --source b.std --analyses race_prediction --workers 2
    python -m repro gen corpus --out corpus/ --kinds locked-mix,heap-churn
    python -m repro fuzz --seeds 50 --quick
    python -m repro sweep --suite smoke --metrics metrics.jsonl
    python -m repro stats metrics.jsonl --format prom
    python -m repro report trend
    python -m repro capabilities

Anything printed here can be obtained programmatically from the same
config through a :class:`repro.api.Session` -- the parity tests pin that
the JSON outputs are byte-identical.  Errors map to the stable exit codes
of :mod:`repro.errors` (0 ok, 1 reported failures, 2 bad request/IO,
130 interrupted).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Sequence

from repro._version import __version__
from repro.api.config import RESULT_FORMATS, WATCH_FORMATS
from repro.api import (
    AnalyzeConfig,
    BenchConfig,
    CompareConfig,
    ConvertConfig,
    FuzzConfig,
    GenConfig,
    GenerateConfig,
    ReportConfig,
    ServeConfig,
    Session,
    StatsConfig,
    SweepConfig,
    TimelineConfig,
    WatchConfig,
)
from repro.errors import EXIT_OK, ReproError, exit_code_for
from repro.runner.corpus import SUITES
from repro.trace import dump_trace, save_trace
from repro.trace.generators import GENERATOR_REGISTRY


def _session() -> Session:
    """The session CLI handlers run against (a fresh facade over the
    process-wide default registry)."""
    return Session()


def _analyses() -> Dict[str, type]:
    """Live view of the analysis registry (front ends must not snapshot it,
    or analyses registered later via ``Analysis.register`` would be
    invisible)."""
    from repro.analyses.common.base import Analysis

    return Analysis.registered()


def _generators() -> Dict[str, Callable]:
    """Live view of the generator registry."""
    return {kind: entry.generator for kind, entry in GENERATOR_REGISTRY.items()}


def __getattr__(name: str):
    """Expose ``ANALYSES`` / ``GENERATORS`` as registry views (PEP 562):
    every *module attribute access* (``repro.cli.ANALYSES``) reflects the
    live registries.  A ``from repro.cli import ANALYSES`` still binds the
    dict built at that moment, as any from-import does."""
    if name == "ANALYSES":
        return _analyses()
    if name == "GENERATORS":
        return _generators()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def resolve_analysis_name(name: str) -> str:
    """Resolve a user-supplied analysis name to its registry key
    (delegates to :meth:`repro.api.Registry.resolve_analysis`)."""
    return _session().registry.resolve_analysis(name)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CSSTs reproduction: trace generation and dynamic analyses.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic trace")
    generate.add_argument("kind", choices=sorted(_generators()))
    generate.add_argument("--threads", type=int, default=4)
    generate.add_argument("--events", type=int, default=200,
                          help="events (or operations) per thread")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=str, default="-",
                          help="output file ('-' for stdout); a .stc/.stc.gz "
                               "suffix writes the binary columnar format")

    analyze = subparsers.add_parser("analyze", help="run one analysis on a trace file")
    analyze.add_argument("analysis", choices=sorted(_analyses()))
    analyze.add_argument("trace", help="trace file produced by 'generate'")
    analyze.add_argument("--backend", default=None,
                         help="partial-order backend (default depends on the "
                              "analysis); 'auto' lets a tuning policy pick")
    analyze.add_argument("--policy", default=None, metavar="NAME",
                         help="selection policy for --backend auto: static, "
                              "heuristic (default), or bandit")
    analyze.add_argument("--policy-state", default=None, metavar="PATH",
                         help="bandit policy state file (JSON) to warm-start "
                              "from; see 'repro sweep --policy-state'")
    analyze.add_argument("--max-findings", type=int, default=20,
                         help="number of findings to print (0 prints none)")
    analyze.add_argument("--format", choices=RESULT_FORMATS, default="text",
                         help="output format (default: text)")
    analyze.add_argument("--metrics", default=None, metavar="PATH",
                         help="enable telemetry and append a JSON-lines "
                              "metrics snapshot to PATH (see 'repro stats')")

    compare = subparsers.add_parser(
        "compare", help="run one analysis on every applicable backend")
    compare.add_argument("analysis", choices=sorted(_analyses()))
    compare.add_argument("trace", help="trace file produced by 'generate'")
    compare.add_argument("--format", choices=RESULT_FORMATS, default="text",
                         help="output format (default: text)")

    sweep = subparsers.add_parser(
        "sweep",
        help="run a suite of traces x analyses x backends, optionally in parallel")
    sweep.add_argument("--suite", default="smoke", choices=sorted(SUITES),
                       help="registered trace suite (default: smoke)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = run inline, no pool)")
    sweep.add_argument("--backends", default=None,
                       help="comma-separated backend names (default: every "
                            "backend applicable to each analysis); include "
                            "'auto' to add a policy-picked job per pair")
    sweep.add_argument("--policy", default=None, metavar="NAME",
                       help="selection policy for 'auto' jobs: static, "
                            "heuristic (default), or bandit")
    sweep.add_argument("--policy-state", default=None, metavar="PATH",
                       help="policy state file (JSON): loaded before the "
                            "sweep when it exists, and saved back with the "
                            "runtimes observed by this sweep (bandit "
                            "warm-start across runs)")
    sweep.add_argument("--oracle", action="store_true",
                       help="with 'auto' in --backends: also run every "
                            "static backend per job and report the policy's "
                            "regret vs the per-job optimum")
    sweep.add_argument("--analyses", default=None,
                       help="comma-separated analysis names (default: every "
                            "analysis the trace kind feeds)")
    sweep.add_argument("--format", choices=SweepConfig.FORMATS,
                       default="table", help="output format (default: table)")
    sweep.add_argument("--baseline", default=None,
                       help="baseline backend for speedups (default: vc, or "
                            "graph for deletion-based analyses)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="seconds to wait for each job's result when "
                            "collecting, in submission order (parallel runs "
                            "only); overrunning jobs are recorded as "
                            "timeouts; the budget covers ALL repeats of a "
                            "job, so scale it when combining with --repeat")
    sweep.add_argument("--repeat", type=int, default=1,
                       help="run each job's analysis N times over the same "
                            "trace and report min (elapsed_seconds) and "
                            "median (elapsed_median_seconds) so numbers "
                            "stop being single-shot noise (default: 1); "
                            "a --timeout budget covers all N runs of a job")
    sweep.add_argument("--seed", type=int, default=None,
                       help="override the seed pinned in every suite spec; "
                            "the effective seed is recorded per job in the "
                            "table/CSV/JSON output either way")
    sweep.add_argument("--corpus", default=None,
                       help="corpus manifest.json (from 'repro gen corpus') "
                            "to sweep instead of a registered --suite")
    sweep.add_argument("--out", default="-",
                       help="output file ('-' for stdout)")
    sweep.add_argument("--metrics", default=None, metavar="PATH",
                       help="enable telemetry and append a JSON-lines "
                            "metrics snapshot to PATH (see 'repro stats')")
    sweep.add_argument("--timeline", default=None, metavar="PATH",
                       help="enable telemetry and write the run's merged "
                            "span timeline to PATH as Chrome trace-event "
                            "JSON (open in chrome://tracing or Perfetto)")
    sweep.add_argument("--list-suites", action="store_true",
                       help="list the registered trace suites and exit")
    sweep.add_argument("--list-analyses", action="store_true",
                       help="list the registered analyses (default/"
                            "applicable backends, feeding workloads) and exit")

    bench = subparsers.add_parser(
        "bench",
        help="performance harness (perf: fixed kernel+analysis suite with "
             "regression check against BENCH_baseline.json)")
    bench.add_argument("mode", choices=("perf",),
                       help="'perf': warmup + min-of-N timings, written to "
                            "BENCH_<date>.json and compared to the baseline")
    bench.add_argument("--quick", action="store_true",
                       help="small workload sizes (CI smoke; compared "
                            "against the baseline's quick section)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timed runs per case, min reported (default: 3)")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default: BENCH_<date>.json; "
                            "'-' prints the document to stdout only)")
    bench.add_argument("--baseline", default=None,
                       help="baseline JSON to compare against (default: "
                            "BENCH_baseline.json when it exists)")
    bench.add_argument("--threshold", type=float, default=None,
                       help="regression threshold: fail when a case is "
                            "slower than baseline by more than this factor "
                            "(default: 2.0)")
    bench.add_argument("--no-compare", action="store_true",
                       help="skip the baseline regression check")
    bench.add_argument("--update-baseline", action="store_true",
                       help="run both quick and full modes and (re)write "
                            "the baseline file instead of a dated report")

    gen = subparsers.add_parser(
        "gen",
        help="scenario-program generation: unified kind table and corpus "
             "builder")
    gen.add_argument("mode", nargs="?", choices=("corpus",),
                     help="'corpus': write a .std.gz trace corpus plus "
                          "manifest.json, registered as a sweep suite")
    gen.add_argument("--list", action="store_true", dest="list_kinds",
                     help="list every registered workload kind (classic "
                          "generators and scenario families, one table) "
                          "and exit")
    gen.add_argument("--out", default=None,
                     help="corpus output directory (required for 'corpus')")
    gen.add_argument("--config", default=None,
                     help="corpus config JSON (keys: name, kinds, count, "
                          "seed, threads, events, params, schedulers); "
                          "explicit flags override it")
    gen.add_argument("--name", default=None,
                     help="corpus name (default: corpus); the sweep suite "
                          "is registered as corpus:<name>")
    gen.add_argument("--kinds", default=None,
                     help="comma-separated workload kinds (default: every "
                          "registered kind)")
    gen.add_argument("--count", type=int, default=None,
                     help="traces per kind (default: 3)")
    gen.add_argument("--seed", type=int, default=None,
                     help="corpus base seed (default: 0)")
    gen.add_argument("--threads", default=None,
                     help="thread-count distribution spec (default: "
                          "uniform:2,4; e.g. 4, uniform:2,8, choice:2,4,8)")
    gen.add_argument("--events", default=None,
                     help="per-thread event distribution spec (default: "
                          "uniform:30,70)")
    gen.add_argument("--schedulers", default=None,
                     help="comma-separated scheduler cycle for scenario "
                          "kinds (default: rr,weighted,adversarial)")
    gen.add_argument("--trace-format", choices=("std", "stc"), default=None,
                     help="member trace file format: 'std' (.std.gz text, "
                          "the default) or 'stc' (binary columnar)")
    gen.add_argument("--format", choices=RESULT_FORMATS, default="text",
                     help="output format for 'corpus' (json prints the "
                          "manifest document; default: text)")

    convert = subparsers.add_parser(
        "convert",
        help="translate a trace between the STD text format and the .stc "
             "binary columnar format (.gz transparent on both sides)")
    convert.add_argument("source", help="input trace (format sniffed from "
                                        "magic bytes, then extension)")
    convert.add_argument("out", help="output path; its suffix picks the "
                                     "format unless --to is given")
    convert.add_argument("--to", choices=ConvertConfig.TRACE_FORMATS,
                         default=None,
                         help="force the output format regardless of the "
                              "destination suffix")
    convert.add_argument("--format", choices=RESULT_FORMATS, default="text",
                         help="output format of the summary (default: text)")

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing: every backend pair and streaming-vs-"
             "batch on generated traces, delta-debugging divergences")
    fuzz.add_argument("--seeds", type=int, default=50,
                      help="number of fuzz cases (default: 50); kinds "
                           "rotate round-robin across cases")
    fuzz.add_argument("--quick", action="store_true",
                      help="small trace shapes (CI smoke budget)")
    fuzz.add_argument("--kinds", default=None,
                      help="comma-separated workload kinds (default: every "
                           "kind that feeds at least one analysis)")
    fuzz.add_argument("--backends", default=None,
                      help="comma-separated backends to compare against "
                           "each analysis's default (default: all "
                           "applicable)")
    fuzz.add_argument("--no-stream", action="store_true",
                      help="skip the streaming-vs-batch comparisons")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed of the deterministic case plan "
                           "(default: 0)")
    fuzz.add_argument("--out", default="fuzz-out",
                      help="directory for minimized counterexamples "
                           "(default: fuzz-out; only written on "
                           "divergence)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="record divergences without delta-debugging "
                           "them")
    fuzz.add_argument("--max-checks", type=int, default=400,
                      help="predicate-evaluation budget per minimization "
                           "(default: 400)")
    fuzz.add_argument("--verbose", action="store_true",
                      help="print each case id as it runs")
    fuzz.add_argument("--format", choices=RESULT_FORMATS, default="text",
                      help="output format (default: text)")

    watch = subparsers.add_parser(
        "watch",
        help="stream a trace through analyses, emitting findings as they "
             "are discovered")
    watch.add_argument("--source", required=True, action="append",
                       help="trace file (.std / .std.gz / .stc), corpus manifest "
                            "(manifest.json[#TRACE_ID]), or generator spec "
                            "kind[:key=value,...] "
                            "(e.g. racy:threads=3,events=60,seed=1); "
                            "repeatable -- several sources run as one "
                            "multi-tenant watch (one tenant per source, "
                            "findings prefixed with the tenant id)")
    watch.add_argument("--analyses", default=None,
                       help="comma-separated analysis names (underscore "
                            "spellings and unique prefixes accepted); "
                            "default for generator sources: the analyses "
                            "the workload kind feeds")
    watch.add_argument("--backend", default=None,
                       help="partial-order backend forced on every attached "
                            "analysis (default: per-analysis default); "
                            "'auto' lets a tuning policy pick per analysis "
                            "from a preamble of streamed events")
    watch.add_argument("--policy", default=None, metavar="NAME",
                       help="selection policy for --backend auto: static, "
                            "heuristic (default), or bandit")
    watch.add_argument("--policy-state", default=None, metavar="PATH",
                       help="bandit policy state file (JSON) to warm-start "
                            "from, e.g. one saved by 'repro sweep "
                            "--policy-state'")
    watch.add_argument("--window", default=None,
                       help="event window: 'none' (default, exact), SIZE "
                            "(tumbling), or SIZE/SLIDE (sliding); bounded "
                            "windows bound memory but only see buffered "
                            "events")
    watch.add_argument("--flush-every", type=int, default=None,
                       help="with the unbounded window, re-evaluate batch-"
                            "fallback analyses every N events so findings "
                            "surface incrementally")
    watch.add_argument("--checkpoint", default=None,
                       help="engine state file; resumed from when it "
                            "exists, saved on exit either way")
    watch.add_argument("--checkpoint-every", type=int, default=None,
                       help="also save the checkpoint every N consumed "
                            "events")
    watch.add_argument("--follow", action="store_true",
                       help="keep polling a file source for appended "
                            "events (tail -f)")
    watch.add_argument("--idle-timeout", type=float, default=None,
                       help="stop following after this many seconds "
                            "without new data")
    watch.add_argument("--max-events", type=int, default=None,
                       help="stop after consuming this many events (state "
                            "is checkpointed if --checkpoint is set)")
    watch.add_argument("--format", choices=WATCH_FORMATS, default="text",
                       help="output format (default: text)")
    watch.add_argument("--metrics", default=None, metavar="PATH",
                       help="enable telemetry and append a JSON-lines "
                            "metrics snapshot to PATH (see 'repro stats')")
    watch.add_argument("--timeline", default=None, metavar="PATH",
                       help="enable telemetry and write the session's span "
                            "timeline (per-flush/per-checkpoint spans) to "
                            "PATH as Chrome trace-event JSON")

    serve = subparsers.add_parser(
        "serve",
        help="run the multi-tenant sharded streaming service: many event "
             "feeds, N worker processes, crash recovery")
    serve.add_argument("--analyses", required=True,
                       help="comma-separated analysis names attached to "
                            "every tenant's engine")
    serve.add_argument("--source", action="append", default=None,
                       help="replay mode: trace file / corpus manifest "
                            "member / generator spec, one tenant per "
                            "source; repeatable (mutually exclusive with "
                            "--listen)")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="socket mode: serve the ingest line protocol "
                            "on this address (port 0 picks a free port; "
                            "mutually exclusive with --source)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes sharding the tenants "
                            "(default: 2; 0 = in-process, no crash "
                            "recovery)")
    serve.add_argument("--backend", default="auto",
                       help="partial-order backend for every engine "
                            "(default: auto -- a tuning policy picks per "
                            "tenant and analysis)")
    serve.add_argument("--policy", default=None, metavar="NAME",
                       help="selection policy for --backend auto: static, "
                            "heuristic (default), or bandit")
    serve.add_argument("--policy-state", default=None, metavar="PATH",
                       help="bandit policy state file (JSON) to warm-start "
                            "from")
    serve.add_argument("--window", default=None,
                       help="event window per tenant engine (see 'repro "
                            "watch --window')")
    serve.add_argument("--flush-every", type=int, default=None,
                       help="re-evaluate batch-fallback analyses every N "
                            "events per tenant")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for per-tenant checkpoints "
                            "(<tenant>.json); enables crashed-worker "
                            "state recovery")
    serve.add_argument("--checkpoint-every", type=int, default=None,
                       help="checkpoint each tenant every N consumed "
                            "events")
    serve.add_argument("--queue-size", type=int, default=256,
                       help="bounded per-worker command queue; a full "
                            "queue pushes back on ingest (default: 256)")
    serve.add_argument("--quota-events", type=int, default=None,
                       help="per-tenant event quota; events beyond it are "
                            "rejected with a protocol error")
    serve.add_argument("--drain-timeout", type=float, default=60.0,
                       help="seconds to wait for tenant summaries at "
                            "shutdown (default: 60)")
    serve.add_argument("--stop-after", type=float, default=None,
                       help="socket mode: stop listening after this many "
                            "seconds (testing hook)")
    serve.add_argument("--crash-worker", default=None,
                       metavar="INDEX@EVENTS",
                       help="fault injection: worker INDEX exits hard "
                            "after consuming EVENTS events (testing hook; "
                            "recovery is expected to hide it)")
    serve.add_argument("--pid-file", default=None, metavar="PATH",
                       help="write one worker pid per line once workers "
                            "are up (for external kill tests)")
    serve.add_argument("--format", choices=WATCH_FORMATS, default="text",
                       help="output format (default: text)")
    serve.add_argument("--metrics", default=None, metavar="PATH",
                       help="enable telemetry and append a JSON-lines "
                            "metrics snapshot to PATH (see 'repro stats')")
    serve.add_argument("--timeline", default=None, metavar="PATH",
                       help="enable telemetry and write the merged span "
                            "timeline (one lane per worker) to PATH as "
                            "Chrome trace-event JSON")

    stats = subparsers.add_parser(
        "stats",
        help="render a telemetry snapshot written via --metrics (table, "
             "raw JSON, or Prometheus text exposition)")
    stats.add_argument("source",
                       help="JSON-lines metrics file written by a "
                            "--metrics run")
    stats.add_argument("--format", choices=StatsConfig.FORMATS,
                       default="table",
                       help="output format (default: table; 'prom' is the "
                            "Prometheus text exposition format)")
    stats.add_argument("--index", type=int, default=-1,
                       help="which snapshot line to render; negative "
                            "indices count from the end (default: -1, "
                            "the latest)")

    timeline = subparsers.add_parser(
        "timeline",
        help="render a telemetry snapshot written via --metrics as a "
             "Chrome trace-event / Perfetto timeline (deterministic: "
             "reproduces a --timeline file byte-for-byte)")
    timeline.add_argument("source",
                          help="JSON-lines metrics file written by a "
                               "--metrics run")
    timeline.add_argument("--out", default="-",
                          help="trace-event JSON output path ('-' prints "
                               "to stdout)")
    timeline.add_argument("--index", type=int, default=-1,
                          help="which snapshot line to render; negative "
                               "indices count from the end (default: -1, "
                               "the latest)")

    report = subparsers.add_parser(
        "report",
        help="longitudinal reports over committed artifacts (trend: "
             "per-case perf history from BENCH_*.json)")
    report.add_argument("mode", choices=ReportConfig.MODES,
                        help="'trend': markdown + JSON per-case timing "
                             "history over BENCH_baseline.json and dated "
                             "BENCH_<date>.json reports")
    report.add_argument("--dir", default=".",
                        help="directory scanned for BENCH_*.json "
                             "(default: .)")
    report.add_argument("--out", default="docs/tables",
                        help="output directory for the rendered report "
                             "(default: docs/tables)")
    report.add_argument("--basename", default="perf_trend",
                        help="output file stem: <out>/<basename>.md and "
                             ".json (default: perf_trend)")

    subparsers.add_parser(
        "capabilities",
        help="print the install's kinds, analyses, backends, suites, "
             "formats and exit codes as JSON (for external tooling)")

    return parser


# --------------------------------------------------------------------------- #
# Rendering helpers
# --------------------------------------------------------------------------- #
def _render(result, fmt: str) -> None:
    """Print a result in its JSON or table form."""
    print(result.to_json() if fmt == "json" else result.to_table())


def _warn(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


def _list_suites() -> None:
    suites = _session().registry.suites()
    print(f"{'suite':12s} {'specs':>5s}  description")
    for name in sorted(suites):
        suite = suites[name]
        print(f"{name:12s} {len(suite.specs):5d}  {suite.description}")


def _list_analyses() -> None:
    registry = _session().registry
    fed_by: Dict[str, list] = {}
    for kind, entry in registry.generators().items():
        for analysis_name in entry.analyses:
            fed_by.setdefault(analysis_name, []).append(kind)
    print(f"{'analysis':20s} {'default':18s} {'mode':10s} "
          f"{'backends':28s} fed by")
    for name, cls in sorted(registry.analyses().items()):
        mode = "streaming" if cls.streaming_native else "batch"
        backends = ",".join(cls.applicable_backends())
        kinds = ",".join(sorted(fed_by.get(name, ()))) or "-"
        print(f"{name:20s} {cls.default_backend():18s} {mode:10s} "
              f"{backends:28s} {kinds}")


def _list_generators() -> None:
    """The unified workload-kind table: classic generators and scenario
    families render from the one generator registry."""
    generators = _session().registry.generators()
    print(f"{'kind':18s} {'source':9s} {'analyses':42s} description")
    for kind, entry in sorted(generators.items()):
        analyses = ",".join(entry.analyses) or "-"
        print(f"{kind:18s} {entry.source:9s} {analyses:42s} "
              f"{entry.description}")


# --------------------------------------------------------------------------- #
# Subcommand shims: argv -> config -> Session.run -> render
# --------------------------------------------------------------------------- #
def _generate(args: argparse.Namespace) -> int:
    config = GenerateConfig(kind=args.kind, threads=args.threads,
                            events=args.events, seed=args.seed)
    result = _session().run(config)
    if args.out == "-":
        dump_trace(result.trace, sys.stdout)
    else:
        save_trace(result.trace, args.out)
        print(f"wrote {len(result.trace)} events "
              f"({result.trace.num_threads} threads) to {args.out}")
    return result.exit_code


def _analyze(args: argparse.Namespace) -> int:
    config = AnalyzeConfig(analysis=args.analysis, trace=args.trace,
                           backend=args.backend, policy=args.policy,
                           policy_state=args.policy_state,
                           max_findings=args.max_findings,
                           metrics=args.metrics)
    result = _session().run(config)
    _render(result, args.format)
    return result.exit_code


def _compare(args: argparse.Namespace) -> int:
    config = CompareConfig(analysis=args.analysis, trace=args.trace)
    result = _session().run(config)
    _render(result, args.format)
    return result.exit_code


def _sweep(args: argparse.Namespace) -> int:
    if args.list_suites or args.list_analyses:
        if args.list_suites:
            _list_suites()
        if args.list_analyses:
            if args.list_suites:
                print()
            _list_analyses()
        return EXIT_OK
    config = SweepConfig(suite=args.suite, corpus=args.corpus, jobs=args.jobs,
                         analyses=args.analyses, backends=args.backends,
                         policy=args.policy, policy_state=args.policy_state,
                         oracle=args.oracle,
                         baseline=args.baseline, timeout=args.timeout,
                         repeat=args.repeat, seed=args.seed,
                         format=args.format, metrics=args.metrics,
                         timeline=args.timeline)
    # Dropped-option warnings are knowable up front; surface them before a
    # potentially long sweep so the user can still abort and rerun.
    preflight = config.validation_warnings()
    for message in preflight:
        _warn(message)
    result = _session().run(config)
    for message in result.warnings:
        if message not in preflight:
            _warn(message)
    destination = None if args.out == "-" else args.out
    if config.format == "csv":
        result.to_csv(sys.stdout if destination is None else destination)
    else:
        rendered = (result.to_json() if config.format == "json"
                    else result.to_table()) + "\n"
        if destination is None:
            sys.stdout.write(rendered)
        else:
            with open(destination, "w", encoding="utf-8") as stream:
                stream.write(rendered)
    if destination is not None:
        print(f"wrote {len(result.records)} records to {destination}")
    return result.exit_code


def _bench(args: argparse.Namespace) -> int:
    config = BenchConfig(mode=args.mode, quick=args.quick,
                         repeats=args.repeats, out=args.out,
                         baseline=args.baseline, threshold=args.threshold,
                         compare=not args.no_compare,
                         update_baseline=args.update_baseline)
    result = _session().run(config)
    print(result.report)
    if result.rendered_document is not None:
        print(result.rendered_document)
    for note in result.notes:
        print(note)
    for entry, regressing in result.regressions:
        print(entry, file=sys.stderr if regressing else sys.stdout)
    return result.exit_code


def _gen(args: argparse.Namespace) -> int:
    if args.list_kinds:
        _list_generators()
        return EXIT_OK
    if args.mode != "corpus":
        raise ReproError(
            "nothing to do: pass 'corpus' to build a corpus or --list to "
            "show the registered workload kinds")
    if args.out is None:
        raise ReproError("gen corpus needs --out DIRECTORY")
    document: Dict[str, object] = {}
    if args.config is not None:
        from repro.gen.corpus import CorpusConfig

        with open(args.config, "r", encoding="utf-8") as stream:
            try:
                document = json.load(stream)
            except ValueError as error:
                raise ReproError(f"corpus config {args.config} is not "
                                 f"valid JSON: {error}") from None
        if not isinstance(document, dict):
            raise ReproError(f"corpus config {args.config} is not a JSON "
                             f"object")
        # Validate through the corpus layer's own schema: one validator
        # for the file format, and run-scoped keys (out, register) belong
        # to the invocation, so a file smuggling them in is rejected here
        # rather than silently fighting the CLI flags.
        CorpusConfig.from_mapping(document)
    overrides = {key: value for key, value in (
        ("name", args.name), ("kinds", args.kinds), ("count", args.count),
        ("seed", args.seed), ("threads", args.threads),
        ("events", args.events), ("schedulers", args.schedulers),
        ("format", args.trace_format))
        if value is not None}
    config = GenConfig.from_dict({**document, **overrides, "out": args.out})
    result = _session().run(config)
    _render(result, args.format)
    return result.exit_code


def _convert(args: argparse.Namespace) -> int:
    config = ConvertConfig(source=args.source, out=args.out, to=args.to)
    result = _session().run(config)
    _render(result, args.format)
    return result.exit_code


def _fuzz(args: argparse.Namespace) -> int:
    config = FuzzConfig(seeds=args.seeds, quick=args.quick, kinds=args.kinds,
                        backends=args.backends, stream=not args.no_stream,
                        seed=args.seed, out=args.out,
                        minimize=not args.no_minimize,
                        max_checks=args.max_checks)
    on_case = None
    if args.verbose:
        def on_case(case) -> None:
            print(f"case {case.case_id}", flush=True)
    result = _session().run(config, on_case=on_case)
    _render(result, args.format)
    if not result.report.ok:
        if args.no_minimize:
            print("divergent inputs were not written (--no-minimize); "
                  "re-run without it to produce counterexamples",
                  file=sys.stderr)
        else:
            print(f"counterexamples written to {args.out}", file=sys.stderr)
    return result.exit_code


def _finding_hooks(jsonl: bool):
    """The ``on_finding``/``on_notice`` pair watch and serve share.

    ``on_finding`` items may be single-feed
    :class:`~repro.stream.engine.StreamFinding` (no tenant) or merged-feed
    :class:`~repro.serve.supervisor.TenantFinding` (tenant-prefixed).
    """

    def emit(item) -> None:
        tenant = getattr(item, "tenant", None)
        if jsonl:
            document = {"type": "finding", "analysis": item.analysis,
                        "position": item.position,
                        "finding": str(item.finding)}
            if tenant is not None:
                document["tenant"] = tenant
            print(json.dumps(document), flush=True)
        else:
            line = f"[{item.position:>6d}] {item.analysis}: {item.finding}"
            if tenant is not None:
                line = f"{tenant} {line}"
            print(line, flush=True)

    def notice(kind: str, message: str) -> None:
        if kind == "warning":
            _warn(message)
        elif not jsonl:
            print(message, flush=True)

    return emit, notice


def _watch(args: argparse.Namespace) -> int:
    sources = list(args.source)
    config = WatchConfig(source=sources[0], sources=tuple(sources[1:]),
                         analyses=args.analyses,
                         backend=args.backend, policy=args.policy,
                         policy_state=args.policy_state, window=args.window,
                         flush_every=args.flush_every,
                         checkpoint=args.checkpoint,
                         checkpoint_every=args.checkpoint_every,
                         follow=args.follow, idle_timeout=args.idle_timeout,
                         max_events=args.max_events, metrics=args.metrics,
                         timeline=args.timeline)
    jsonl = args.format == "jsonl"
    emit, notice = _finding_hooks(jsonl)
    result = _session().run(config, on_finding=emit, on_notice=notice)
    if jsonl:
        print(json.dumps(result.to_dict()), flush=True)
    else:
        print(result.to_table())
    return result.exit_code


def _serve(args: argparse.Namespace) -> int:
    host, port = None, None
    if args.listen is not None:
        address, separator, port_text = args.listen.rpartition(":")
        if not separator:
            raise ReproError(f"malformed --listen {args.listen!r}: "
                             f"expected HOST:PORT")
        try:
            port = int(port_text)
        except ValueError:
            raise ReproError(f"malformed --listen port {port_text!r}") \
                from None
        host = address or "127.0.0.1"
    config = ServeConfig(analyses=args.analyses,
                         sources=tuple(args.source or ()),
                         host=host, port=port, workers=args.workers,
                         backend=args.backend, policy=args.policy,
                         policy_state=args.policy_state, window=args.window,
                         flush_every=args.flush_every,
                         checkpoint_dir=args.checkpoint_dir,
                         checkpoint_every=args.checkpoint_every,
                         queue_size=args.queue_size,
                         quota_events=args.quota_events,
                         drain_timeout=args.drain_timeout,
                         stop_after=args.stop_after,
                         crash_worker=args.crash_worker,
                         pid_file=args.pid_file,
                         metrics=args.metrics, timeline=args.timeline)
    jsonl = args.format == "jsonl"
    emit, notice = _finding_hooks(jsonl)
    result = _session().run(config, on_finding=emit, on_notice=notice)
    if jsonl:
        print(json.dumps(result.to_dict()), flush=True)
    else:
        print(result.to_table())
    return result.exit_code


def _stats(args: argparse.Namespace) -> int:
    config = StatsConfig(source=args.source, format=args.format,
                         index=args.index)
    result = _session().run(config)
    if config.format == "prom":
        print(result.to_prom())
    elif config.format == "chrome":
        print(result.to_chrome())
    else:
        _render(result, config.format)
    return result.exit_code


def _timeline(args: argparse.Namespace) -> int:
    config = TimelineConfig(source=args.source, out=args.out,
                            index=args.index)
    result = _session().run(config)
    print(result.to_table())
    return result.exit_code


def _report(args: argparse.Namespace) -> int:
    config = ReportConfig(mode=args.mode, dir=args.dir, out=args.out,
                          basename=args.basename)
    result = _session().run(config)
    print(result.to_table())
    return result.exit_code


def _capabilities(args: argparse.Namespace) -> int:
    print(json.dumps(_session().capabilities(), indent=2, sort_keys=True))
    return EXIT_OK


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse argv, run the subcommand, and map errors to the stable exit
    codes of :mod:`repro.errors` -- the single place CLI exceptions are
    turned into process status."""
    args = build_parser().parse_args(argv)
    handlers = {"generate": _generate, "analyze": _analyze,
                "compare": _compare, "sweep": _sweep, "bench": _bench,
                "gen": _gen, "convert": _convert, "fuzz": _fuzz,
                "watch": _watch, "serve": _serve,
                "stats": _stats, "timeline": _timeline,
                "report": _report, "capabilities": _capabilities}
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return exit_code_for(KeyboardInterrupt())
    except BrokenPipeError:
        # The downstream consumer (e.g. `repro capabilities | head`) closed
        # the pipe -- nothing to report; 128+SIGPIPE is the shell convention.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
