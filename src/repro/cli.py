"""Command-line interface: generate traces, run analyses, compare backends,
sweep whole suites in parallel, and watch live event streams.

The CLI is a thin wrapper over the library so that the typical workflow --
produce a workload, analyse it, compare partial-order backends on it, sweep
a whole corpus, monitor a growing trace -- does not require writing Python:

.. code-block:: bash

    python -m repro generate racy --threads 4 --events 500 --out trace.txt
    python -m repro analyze race-prediction trace.txt --backend incremental-csst
    python -m repro compare tso-consistency trace.txt
    python -m repro sweep --suite smoke --jobs 2 --format json
    python -m repro watch --source trace.txt --analyses race_prediction,deadlock
    python -m repro gen corpus --out corpus/ --kinds locked-mix,heap-churn
    python -m repro fuzz --seeds 50 --quick
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analyses.common.base import Analysis
from repro.errors import ReproError
from repro.runner.corpus import SUITES
from repro.runner.executor import run_suite
from repro.trace import dump_trace, load_trace
from repro.trace.generators import GENERATOR_REGISTRY, build_trace


def _analyses() -> Dict[str, type]:
    """Live view of the analysis registry (front ends must not snapshot it,
    or analyses registered later via ``Analysis.register`` would be
    invisible)."""
    return Analysis.registered()


def _generators() -> Dict[str, Callable]:
    """Live view of the generator registry."""
    return {kind: entry.generator for kind, entry in GENERATOR_REGISTRY.items()}


def __getattr__(name: str):
    """Expose ``ANALYSES`` / ``GENERATORS`` as registry views (PEP 562):
    every *module attribute access* (``repro.cli.ANALYSES``) reflects the
    live registries.  A ``from repro.cli import ANALYSES`` still binds the
    dict built at that moment, as any from-import does."""
    if name == "ANALYSES":
        return _analyses()
    if name == "GENERATORS":
        return _generators()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def resolve_analysis_name(name: str) -> str:
    """Resolve a user-supplied analysis name to its registry key.

    Accepts the exact key, an underscore spelling (``race_prediction``), or
    any unique prefix (``deadlock`` -> ``deadlock-prediction``).
    """
    registry = _analyses()
    candidate = name.strip().replace("_", "-")
    if candidate in registry:
        return candidate
    matches = sorted(key for key in registry if key.startswith(candidate))
    if len(matches) == 1:
        return matches[0]
    known = ", ".join(sorted(registry))
    if matches:
        raise ReproError(
            f"ambiguous analysis {name!r} (matches: {', '.join(matches)}); "
            f"known: {known}")
    raise ReproError(f"unknown analysis {name!r}; known: {known}")


def _default_backend(analysis_name: str) -> str:
    return _analyses()[analysis_name].default_backend()


def _backends_for(analysis_name: str) -> Sequence[str]:
    return _analyses()[analysis_name].applicable_backends()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CSSTs reproduction: trace generation and dynamic analyses.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic trace")
    generate.add_argument("kind", choices=sorted(_generators()))
    generate.add_argument("--threads", type=int, default=4)
    generate.add_argument("--events", type=int, default=200,
                          help="events (or operations) per thread")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=str, default="-",
                          help="output file ('-' for stdout)")

    analyze = subparsers.add_parser("analyze", help="run one analysis on a trace file")
    analyze.add_argument("analysis", choices=sorted(_analyses()))
    analyze.add_argument("trace", help="trace file produced by 'generate'")
    analyze.add_argument("--backend", default=None,
                         help="partial-order backend (default depends on the analysis)")
    analyze.add_argument("--max-findings", type=int, default=20,
                         help="number of findings to print (0 prints none)")

    compare = subparsers.add_parser(
        "compare", help="run one analysis on every applicable backend")
    compare.add_argument("analysis", choices=sorted(_analyses()))
    compare.add_argument("trace", help="trace file produced by 'generate'")

    sweep = subparsers.add_parser(
        "sweep",
        help="run a suite of traces x analyses x backends, optionally in parallel")
    sweep.add_argument("--suite", default="smoke", choices=sorted(SUITES),
                       help="registered trace suite (default: smoke)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = run inline, no pool)")
    sweep.add_argument("--backends", default=None,
                       help="comma-separated backend names (default: every "
                            "backend applicable to each analysis)")
    sweep.add_argument("--analyses", default=None,
                       help="comma-separated analysis names (default: every "
                            "analysis the trace kind feeds)")
    sweep.add_argument("--format", choices=("table", "json", "csv"),
                       default="table", help="output format (default: table)")
    sweep.add_argument("--baseline", default=None,
                       help="baseline backend for speedups (default: vc, or "
                            "graph for deletion-based analyses)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="seconds to wait for each job's result when "
                            "collecting, in submission order (parallel runs "
                            "only); overrunning jobs are recorded as "
                            "timeouts; the budget covers ALL repeats of a "
                            "job, so scale it when combining with --repeat")
    sweep.add_argument("--repeat", type=int, default=1,
                       help="run each job's analysis N times over the same "
                            "trace and report min (elapsed_seconds) and "
                            "median (elapsed_median_seconds) so numbers "
                            "stop being single-shot noise (default: 1); "
                            "a --timeout budget covers all N runs of a job")
    sweep.add_argument("--seed", type=int, default=None,
                       help="override the seed pinned in every suite spec; "
                            "the effective seed is recorded per job in the "
                            "table/CSV/JSON output either way")
    sweep.add_argument("--corpus", default=None,
                       help="corpus manifest.json (from 'repro gen corpus') "
                            "to sweep instead of a registered --suite")
    sweep.add_argument("--out", default="-",
                       help="output file ('-' for stdout)")
    sweep.add_argument("--list-suites", action="store_true",
                       help="list the registered trace suites and exit")
    sweep.add_argument("--list-analyses", action="store_true",
                       help="list the registered analyses (default/"
                            "applicable backends, feeding workloads) and exit")

    bench = subparsers.add_parser(
        "bench",
        help="performance harness (perf: fixed kernel+analysis suite with "
             "regression check against BENCH_baseline.json)")
    bench.add_argument("mode", choices=("perf",),
                       help="'perf': warmup + min-of-N timings, written to "
                            "BENCH_<date>.json and compared to the baseline")
    bench.add_argument("--quick", action="store_true",
                       help="small workload sizes (CI smoke; compared "
                            "against the baseline's quick section)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timed runs per case, min reported (default: 3)")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default: BENCH_<date>.json; "
                            "'-' prints the document to stdout only)")
    bench.add_argument("--baseline", default=None,
                       help="baseline JSON to compare against (default: "
                            "BENCH_baseline.json when it exists)")
    bench.add_argument("--threshold", type=float, default=None,
                       help="regression threshold: fail when a case is "
                            "slower than baseline by more than this factor "
                            "(default: 2.0)")
    bench.add_argument("--no-compare", action="store_true",
                       help="skip the baseline regression check")
    bench.add_argument("--update-baseline", action="store_true",
                       help="run both quick and full modes and (re)write "
                            "the baseline file instead of a dated report")

    gen = subparsers.add_parser(
        "gen",
        help="scenario-program generation: unified kind table and corpus "
             "builder")
    gen.add_argument("mode", nargs="?", choices=("corpus",),
                     help="'corpus': write a .std.gz trace corpus plus "
                          "manifest.json, registered as a sweep suite")
    gen.add_argument("--list", action="store_true", dest="list_kinds",
                     help="list every registered workload kind (classic "
                          "generators and scenario families, one table) "
                          "and exit")
    gen.add_argument("--out", default=None,
                     help="corpus output directory (required for 'corpus')")
    gen.add_argument("--config", default=None,
                     help="corpus config JSON (keys: name, kinds, count, "
                          "seed, threads, events, params, schedulers); "
                          "explicit flags override it")
    gen.add_argument("--name", default=None,
                     help="corpus name (default: corpus); the sweep suite "
                          "is registered as corpus:<name>")
    gen.add_argument("--kinds", default=None,
                     help="comma-separated workload kinds (default: every "
                          "registered kind)")
    gen.add_argument("--count", type=int, default=None,
                     help="traces per kind (default: 3)")
    gen.add_argument("--seed", type=int, default=None,
                     help="corpus base seed (default: 0)")
    gen.add_argument("--threads", default=None,
                     help="thread-count distribution spec (default: "
                          "uniform:2,4; e.g. 4, uniform:2,8, choice:2,4,8)")
    gen.add_argument("--events", default=None,
                     help="per-thread event distribution spec (default: "
                          "uniform:30,70)")
    gen.add_argument("--schedulers", default=None,
                     help="comma-separated scheduler cycle for scenario "
                          "kinds (default: rr,weighted,adversarial)")

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing: every backend pair and streaming-vs-"
             "batch on generated traces, delta-debugging divergences")
    fuzz.add_argument("--seeds", type=int, default=50,
                      help="number of fuzz cases (default: 50); kinds "
                           "rotate round-robin across cases")
    fuzz.add_argument("--quick", action="store_true",
                      help="small trace shapes (CI smoke budget)")
    fuzz.add_argument("--kinds", default=None,
                      help="comma-separated workload kinds (default: every "
                           "kind that feeds at least one analysis)")
    fuzz.add_argument("--backends", default=None,
                      help="comma-separated backends to compare against "
                           "each analysis's default (default: all "
                           "applicable)")
    fuzz.add_argument("--no-stream", action="store_true",
                      help="skip the streaming-vs-batch comparisons")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed of the deterministic case plan "
                           "(default: 0)")
    fuzz.add_argument("--out", default="fuzz-out",
                      help="directory for minimized counterexamples "
                           "(default: fuzz-out; only written on "
                           "divergence)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="record divergences without delta-debugging "
                           "them")
    fuzz.add_argument("--max-checks", type=int, default=400,
                      help="predicate-evaluation budget per minimization "
                           "(default: 400)")
    fuzz.add_argument("--verbose", action="store_true",
                      help="print each case id as it runs")

    watch = subparsers.add_parser(
        "watch",
        help="stream a trace through analyses, emitting findings as they "
             "are discovered")
    watch.add_argument("--source", required=True,
                       help="trace file (.std / .std.gz), corpus manifest "
                            "(manifest.json[#TRACE_ID]), or generator spec "
                            "kind[:key=value,...] "
                            "(e.g. racy:threads=3,events=60,seed=1)")
    watch.add_argument("--analyses", default=None,
                       help="comma-separated analysis names (underscore "
                            "spellings and unique prefixes accepted); "
                            "default for generator sources: the analyses "
                            "the workload kind feeds")
    watch.add_argument("--backend", default=None,
                       help="partial-order backend forced on every attached "
                            "analysis (default: per-analysis default)")
    watch.add_argument("--window", default=None,
                       help="event window: 'none' (default, exact), SIZE "
                            "(tumbling), or SIZE/SLIDE (sliding); bounded "
                            "windows bound memory but only see buffered "
                            "events")
    watch.add_argument("--flush-every", type=int, default=None,
                       help="with the unbounded window, re-evaluate batch-"
                            "fallback analyses every N events so findings "
                            "surface incrementally")
    watch.add_argument("--checkpoint", default=None,
                       help="engine state file; resumed from when it "
                            "exists, saved on exit either way")
    watch.add_argument("--checkpoint-every", type=int, default=None,
                       help="also save the checkpoint every N consumed "
                            "events")
    watch.add_argument("--follow", action="store_true",
                       help="keep polling a file source for appended "
                            "events (tail -f)")
    watch.add_argument("--idle-timeout", type=float, default=None,
                       help="stop following after this many seconds "
                            "without new data")
    watch.add_argument("--max-events", type=int, default=None,
                       help="stop after consuming this many events (state "
                            "is checkpointed if --checkpoint is set)")
    watch.add_argument("--format", choices=("text", "jsonl"), default="text",
                       help="output format (default: text)")

    return parser


def _generate(args: argparse.Namespace) -> int:
    trace = build_trace(args.kind, num_threads=args.threads,
                        events=args.events, seed=args.seed)
    if args.out == "-":
        dump_trace(trace, sys.stdout)
    else:
        dump_trace(trace, args.out)
        print(f"wrote {len(trace)} events ({trace.num_threads} threads) to {args.out}")
    return 0


def _make_analysis(name: str, backend: Optional[str]) -> Analysis:
    backend = backend or _default_backend(name)
    return _analyses()[name](backend)


def _analyze(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    analysis = _make_analysis(args.analysis, args.backend)
    result = analysis.run(trace)
    print(result.summary())
    for key, value in sorted(result.details.items()):
        if not isinstance(value, (list, dict)):
            print(f"  {key}: {value}")
    shown = result.findings[:max(args.max_findings, 0)]
    for finding in shown:
        print(f"  finding: {finding}")
    remaining = result.finding_count - len(shown)
    if remaining > 0:
        print(f"  ... and {remaining} more")
    return 0


def _compare(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    print(f"{'backend':22s} {'seconds':>9s} {'findings':>9s} {'inserts':>9s} "
          f"{'deletes':>9s} {'queries':>9s}")
    for backend in _backends_for(args.analysis):
        analysis = _make_analysis(args.analysis, backend)
        result = analysis.run(trace)
        print(
            f"{backend:22s} {result.elapsed_seconds:9.3f} {result.finding_count:9d} "
            f"{result.insert_count:9d} {result.delete_count:9d} {result.query_count:9d}"
        )
    return 0


def _split_csv_flag(value: Optional[str]) -> Optional[Sequence[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _list_suites() -> None:
    print(f"{'suite':12s} {'specs':>5s}  description")
    for name in sorted(SUITES):
        suite = SUITES[name]
        print(f"{name:12s} {len(suite.specs):5d}  {suite.description}")


def _list_analyses() -> None:
    fed_by: Dict[str, List[str]] = {}
    for kind, entry in GENERATOR_REGISTRY.items():
        for analysis_name in entry.analyses:
            fed_by.setdefault(analysis_name, []).append(kind)
    print(f"{'analysis':20s} {'default':18s} {'mode':10s} "
          f"{'backends':28s} fed by")
    for name, cls in sorted(_analyses().items()):
        mode = "streaming" if cls.streaming_native else "batch"
        backends = ",".join(cls.applicable_backends())
        kinds = ",".join(sorted(fed_by.get(name, ()))) or "-"
        print(f"{name:20s} {cls.default_backend():18s} {mode:10s} "
              f"{backends:28s} {kinds}")


def _sweep(args: argparse.Namespace) -> int:
    from repro.core import BACKENDS

    if args.list_suites or args.list_analyses:
        if args.list_suites:
            _list_suites()
        if args.list_analyses:
            if args.list_suites:
                print()
            _list_analyses()
        return 0
    if args.baseline is not None and args.baseline not in BACKENDS:
        known = ", ".join(sorted(BACKENDS))
        raise ReproError(f"unknown baseline backend {args.baseline!r}; "
                         f"known: {known}")
    if args.baseline is not None and args.format == "csv":
        print("warning: --baseline has no effect with --format csv "
              "(the CSV carries per-job records, not speedup aggregates)",
              file=sys.stderr)
    if args.timeout is not None and args.jobs <= 1:
        print("warning: --timeout only applies to parallel runs; "
              "--jobs 1 runs inline and cannot be interrupted",
              file=sys.stderr)
    if args.repeat < 1:
        raise ReproError(f"--repeat must be >= 1, got {args.repeat}")
    suite_name = args.suite
    if args.corpus is not None:
        from repro.gen.corpus import register_corpus_suite

        suite_name = register_corpus_suite(args.corpus).name
    result = run_suite(
        suite_name,
        workers=args.jobs,
        analyses=_split_csv_flag(args.analyses),
        backends=_split_csv_flag(args.backends),
        timeout_seconds=args.timeout,
        repeats=args.repeat,
        seed=args.seed,
    )
    if args.baseline is not None and args.format != "csv" and not any(
            record.backend == args.baseline for record in result.ok_records()):
        print(f"warning: baseline backend {args.baseline!r} ran no job in "
              f"this sweep; no speedups computed", file=sys.stderr)
    destination = None if args.out == "-" else args.out
    if args.format == "csv":
        result.to_csv(sys.stdout if destination is None else destination)
    else:
        if args.format == "json":
            rendered = result.to_json(baseline=args.baseline) + "\n"
        else:
            rendered = result.format_table(baseline=args.baseline) + "\n"
        if destination is None:
            sys.stdout.write(rendered)
        else:
            with open(destination, "w", encoding="utf-8") as stream:
                stream.write(rendered)
    if destination is not None:
        print(f"wrote {len(result.records)} records to {destination}")
    return 1 if result.failures() else 0


def _bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench import perf

    repeats = args.repeats if args.repeats is not None else perf.DEFAULT_REPEATS
    if repeats < 1:
        raise ReproError(f"--repeats must be >= 1, got {repeats}")
    threshold = (args.threshold if args.threshold is not None
                 else perf.DEFAULT_THRESHOLD)
    if threshold <= 0:
        raise ReproError(f"--threshold must be > 0, got {threshold}")

    if args.update_baseline:
        baseline_path = args.baseline or perf.BASELINE_FILENAME
        document = perf.build_baseline(repeats=repeats)
        perf.write_document(document, baseline_path)
        full = document["modes"]["full"]
        print(perf.format_report(full))
        print(f"wrote baseline ({len(full['results'])} cases, quick+full) "
              f"to {baseline_path}")
        return 0

    # Validate an explicitly requested baseline up front -- the suite takes
    # a while and a typo'd path should not cost a full run.
    if not args.no_compare and args.baseline is not None \
            and not os.path.exists(args.baseline):
        raise ReproError(f"baseline file not found: {args.baseline}")

    document = perf.run_perf(quick=args.quick, repeats=repeats)
    print(perf.format_report(document))
    if args.out == "-":
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        out_path = args.out or perf.default_output_path()
        perf.write_document(document, out_path)
        print(f"wrote {len(document['results'])} cases to {out_path}")

    if args.no_compare:
        return 0
    baseline_path = args.baseline or perf.BASELINE_FILENAME
    if not os.path.exists(baseline_path):
        if args.baseline is not None:
            raise ReproError(f"baseline file not found: {baseline_path}")
        print(f"no {perf.BASELINE_FILENAME} found; regression check skipped "
              f"(create one with 'repro bench perf --update-baseline')")
        return 0
    entries = perf.compare_documents(document, perf.read_document(baseline_path),
                                     threshold=threshold)
    if not entries:
        print(f"no regressions vs {baseline_path} "
              f"(threshold {threshold:.2f}x)")
        return 0
    for entry in entries:
        print(entry, file=sys.stderr if perf.is_regression([entry]) else sys.stdout)
    return 1 if perf.is_regression(entries) else 0


def _list_generators() -> None:
    """The unified workload-kind table: classic generators and scenario
    families render from the single :data:`GENERATOR_REGISTRY`."""
    print(f"{'kind':18s} {'source':9s} {'analyses':42s} description")
    for kind, entry in sorted(GENERATOR_REGISTRY.items()):
        analyses = ",".join(entry.analyses) or "-"
        print(f"{kind:18s} {entry.source:9s} {analyses:42s} "
              f"{entry.description}")


def _gen(args: argparse.Namespace) -> int:
    from repro.gen.corpus import CorpusConfig, build_corpus

    if args.list_kinds:
        _list_generators()
        return 0
    if args.mode != "corpus":
        raise ReproError(
            "nothing to do: pass 'corpus' to build a corpus or --list to "
            "show the registered workload kinds")
    if args.out is None:
        raise ReproError("gen corpus needs --out DIRECTORY")
    if args.config is not None:
        config = CorpusConfig.from_file(args.config)
    else:
        config = CorpusConfig()
    overrides = {}
    if args.name is not None:
        overrides["name"] = args.name
    if args.kinds is not None:
        overrides["kinds"] = tuple(_split_csv_flag(args.kinds) or ())
    if args.count is not None:
        overrides["count"] = args.count
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.threads is not None:
        overrides["threads"] = args.threads
    if args.events is not None:
        overrides["events"] = args.events
    if args.schedulers is not None:
        overrides["schedulers"] = tuple(_split_csv_flag(args.schedulers)
                                        or ())
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    manifest = build_corpus(args.out, config)
    members = manifest["traces"]
    total_events = sum(member["event_count"] for member in members)
    print(f"wrote {len(members)} traces ({total_events} events) to "
          f"{args.out}")
    print(f"manifest: {args.out}/manifest.json")
    print(f"registered sweep suite {manifest['suite']!r} "
          f"(sweep it with: repro sweep --corpus {args.out}/manifest.json)")
    return 0


def _fuzz(args: argparse.Namespace) -> int:
    from repro.gen.fuzz import run_fuzz

    if args.seeds < 1:
        raise ReproError(f"--seeds must be >= 1, got {args.seeds}")
    if args.max_checks < 1:
        raise ReproError(f"--max-checks must be >= 1, got {args.max_checks}")
    on_case = None
    if args.verbose:
        def on_case(case) -> None:
            print(f"case {case.case_id}", flush=True)
    report = run_fuzz(
        seeds=args.seeds,
        quick=args.quick,
        kinds=_split_csv_flag(args.kinds),
        backends=_split_csv_flag(args.backends),
        stream=not args.no_stream,
        base_seed=args.seed,
        out_dir=args.out,
        minimize=not args.no_minimize,
        max_checks=args.max_checks,
        on_case=on_case,
    )
    print(report.summary())
    if not report.ok:
        if args.no_minimize:
            print("divergent inputs were not written (--no-minimize); "
                  "re-run without it to produce counterexamples",
                  file=sys.stderr)
        else:
            print(f"counterexamples written to {args.out}", file=sys.stderr)
    return 0 if report.ok else 1


def _watch(args: argparse.Namespace) -> int:
    import os

    from repro.stream import (
        GeneratorSource,
        StreamEngine,
        open_source,
        parse_window,
        restore_engine,
    )

    source = open_source(args.source, follow=args.follow,
                         idle_timeout=args.idle_timeout)
    resuming = args.checkpoint is not None and os.path.exists(args.checkpoint)

    if args.analyses:
        analyses = [resolve_analysis_name(item)
                    for item in args.analyses.split(",") if item.strip()]
    elif resuming:
        analyses = []  # the checkpoint records them
    elif isinstance(source, GeneratorSource):
        analyses = [resolve_analysis_name(item) for item
                    in GENERATOR_REGISTRY[source.kind].analyses]
    else:
        raise ReproError(
            "file sources need --analyses (try --analyses "
            "race_prediction,deadlock; see 'repro sweep --list-analyses')")
    if not analyses and not resuming:
        raise ReproError("no analyses selected")

    jsonl = args.format == "jsonl"

    def emit(item) -> None:
        if jsonl:
            print(json.dumps({"type": "finding", "analysis": item.analysis,
                              "position": item.position,
                              "finding": str(item.finding)}), flush=True)
        else:
            print(f"[{item.position:>6d}] {item.analysis}: {item.finding}",
                  flush=True)

    skip = 0
    if resuming:
        engine = restore_engine(args.checkpoint, on_finding=emit)
        skip = engine.cursor
        # The checkpoint's configuration wins on resume; say so whenever a
        # flag the user passed this time disagrees with it.
        if analyses and sorted(engine.analyses) != sorted(analyses):
            print(f"warning: resuming checkpoint with analyses "
                  f"{engine.analyses} (requested {analyses})",
                  file=sys.stderr)
        if args.window is not None and \
                parse_window(args.window).spec() != engine.window.spec():
            print(f"warning: resuming checkpoint with window "
                  f"{engine.window.spec()!r} (requested {args.window!r}); "
                  f"--window is fixed at checkpoint creation",
                  file=sys.stderr)
        if args.flush_every is not None and args.flush_every != \
                getattr(engine.window, "flush_every", None):
            print(f"warning: resuming checkpoint with flush-every "
                  f"{getattr(engine.window, 'flush_every', None)} "
                  f"(requested {args.flush_every}); --flush-every is "
                  f"fixed at checkpoint creation", file=sys.stderr)
        if args.backend is not None and args.backend != engine.backend_option:
            print(f"warning: resuming checkpoint with backend "
                  f"{engine.backend_option or 'per-analysis default'} "
                  f"(requested {args.backend}); --backend is fixed at "
                  f"checkpoint creation", file=sys.stderr)
        if not jsonl:
            print(f"resumed from {args.checkpoint} at event {skip}")
    else:
        engine = StreamEngine(
            analyses,
            backend=args.backend,
            window=parse_window(args.window, flush_every=args.flush_every),
            name=source.name,
            on_finding=emit,
        )

    result = engine.run(source, skip=skip, max_events=args.max_events,
                        checkpoint_path=args.checkpoint,
                        checkpoint_every=args.checkpoint_every)

    for name, message in sorted(result.errors.items()):
        print(f"warning: {name}: last flush failed: {message}",
              file=sys.stderr)
    if jsonl:
        print(json.dumps({
            "type": "summary",
            "name": result.name,
            "events": result.stats.events,
            "threads": result.stats.threads,
            "flushes": result.stats.flushes,
            "emitted": result.stats.emitted,
            "backbone_edges": result.stats.backbone_edges,
            "final": {name: [str(finding) for finding in res.findings]
                      for name, res in sorted(result.results.items())},
        }), flush=True)
    else:
        print(result.summary())
        if engine.order is not None:
            print(f"  sync backbone: {result.stats.backbone_edges} edges "
                  f"across {result.stats.threads} threads")
        for name, res in sorted(result.results.items()):
            print(f"  final[{name}]: {res.finding_count} findings "
                  f"({res.operation_count} PO ops, "
                  f"{res.elapsed_seconds:.3f}s last flush)")
        if args.checkpoint is not None:
            print(f"checkpoint saved to {args.checkpoint} "
                  f"(cursor {engine.cursor})")
    # Mirror `sweep`: a run whose final flush failed for some analysis is
    # not a clean success (its final result is missing), even though the
    # stream itself was consumed and checkpointed.
    return 1 if result.errors else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"generate": _generate, "analyze": _analyze,
                "compare": _compare, "sweep": _sweep, "bench": _bench,
                "gen": _gen, "fuzz": _fuzz, "watch": _watch}
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
