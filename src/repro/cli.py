"""Command-line interface: generate traces, run analyses, compare backends.

The CLI is a thin wrapper over the library so that the typical workflow --
produce a workload, analyse it, compare partial-order backends on it -- does
not require writing Python:

.. code-block:: bash

    python -m repro generate racy --threads 4 --events 500 --out trace.txt
    python -m repro analyze race-prediction trace.txt --backend incremental-csst
    python -m repro compare tso-consistency trace.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analyses.c11 import C11RaceAnalysis
from repro.analyses.common.base import Analysis
from repro.analyses.deadlock import DeadlockPredictionAnalysis
from repro.analyses.linearizability import LinearizabilityAnalysis
from repro.analyses.membug import MemoryBugAnalysis
from repro.analyses.race_prediction import RacePredictionAnalysis
from repro.analyses.tso import TSOConsistencyAnalysis
from repro.analyses.uaf import UseAfterFreeAnalysis
from repro.core import DYNAMIC_BACKENDS, INCREMENTAL_BACKENDS
from repro.trace import dump_trace, generators, load_trace

#: Analyses runnable from the command line.
ANALYSES: Dict[str, type] = {
    "race-prediction": RacePredictionAnalysis,
    "deadlock-prediction": DeadlockPredictionAnalysis,
    "memory-bugs": MemoryBugAnalysis,
    "tso-consistency": TSOConsistencyAnalysis,
    "use-after-free": UseAfterFreeAnalysis,
    "c11-races": C11RaceAnalysis,
    "linearizability": LinearizabilityAnalysis,
}

#: Trace generators reachable from ``repro generate``.
GENERATORS: Dict[str, Callable] = {
    "racy": generators.racy_trace,
    "deadlock": generators.deadlock_trace,
    "memory": generators.memory_trace,
    "tso": generators.tso_trace,
    "c11": generators.c11_trace,
    "history": generators.history_trace,
}


def _default_backend(analysis_name: str) -> str:
    return "csst" if analysis_name == "linearizability" else "incremental-csst"


def _backends_for(analysis_name: str) -> Sequence[str]:
    return DYNAMIC_BACKENDS if analysis_name == "linearizability" else INCREMENTAL_BACKENDS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CSSTs reproduction: trace generation and dynamic analyses.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic trace")
    generate.add_argument("kind", choices=sorted(GENERATORS))
    generate.add_argument("--threads", type=int, default=4)
    generate.add_argument("--events", type=int, default=200,
                          help="events (or operations) per thread")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=str, default="-",
                          help="output file ('-' for stdout)")

    analyze = subparsers.add_parser("analyze", help="run one analysis on a trace file")
    analyze.add_argument("analysis", choices=sorted(ANALYSES))
    analyze.add_argument("trace", help="trace file produced by 'generate'")
    analyze.add_argument("--backend", default=None,
                         help="partial-order backend (default depends on the analysis)")
    analyze.add_argument("--max-findings", type=int, default=20,
                         help="number of findings to print")

    compare = subparsers.add_parser(
        "compare", help="run one analysis on every applicable backend")
    compare.add_argument("analysis", choices=sorted(ANALYSES))
    compare.add_argument("trace", help="trace file produced by 'generate'")

    return parser


def _generate(args: argparse.Namespace) -> int:
    generator = GENERATORS[args.kind]
    kwargs = {"num_threads": args.threads, "seed": args.seed}
    if args.kind == "history":
        kwargs["operations_per_thread"] = args.events
    else:
        kwargs["events_per_thread"] = args.events
    trace = generator(**kwargs)
    if args.out == "-":
        dump_trace(trace, sys.stdout)
    else:
        dump_trace(trace, args.out)
        print(f"wrote {len(trace)} events ({trace.num_threads} threads) to {args.out}")
    return 0


def _make_analysis(name: str, backend: Optional[str]) -> Analysis:
    backend = backend or _default_backend(name)
    return ANALYSES[name](backend)


def _analyze(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    analysis = _make_analysis(args.analysis, args.backend)
    result = analysis.run(trace)
    print(result.summary())
    for key, value in sorted(result.details.items()):
        if not isinstance(value, (list, dict)):
            print(f"  {key}: {value}")
    for finding in result.findings[: args.max_findings]:
        print(f"  finding: {finding}")
    if result.finding_count > args.max_findings:
        print(f"  ... and {result.finding_count - args.max_findings} more")
    return 0


def _compare(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    print(f"{'backend':20s} {'seconds':>9s} {'findings':>9s} {'inserts':>9s} "
          f"{'deletes':>9s} {'queries':>9s}")
    for backend in _backends_for(args.analysis):
        analysis = _make_analysis(args.analysis, backend)
        result = analysis.run(trace)
        print(
            f"{backend:20s} {result.elapsed_seconds:9.3f} {result.finding_count:9d} "
            f"{result.insert_count:9d} {result.delete_count:9d} {result.query_count:9d}"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _generate(args)
    if args.command == "analyze":
        return _analyze(args)
    if args.command == "compare":
        return _compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
