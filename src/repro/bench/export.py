"""Export benchmark results to CSV.

The paper's artifact emits one CSV file per analysis (`compile_results.py`);
this module provides the same convenience for the reproduction: table
results and scalability figures can be written to CSV for further plotting
or comparison against the paper's numbers.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence, TextIO, Union

from repro.bench.harness import TableResult
from repro.bench.tables import CrossoverResult, Figure11Result

Destination = Union[str, Path, TextIO]


def _open_and_call(destination: Destination, writer_func) -> None:
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8", newline="") as stream:
            writer_func(stream)
    else:
        writer_func(destination)


def rows_to_csv(header: Sequence, rows: Iterable[Sequence],
                destination: Destination) -> None:
    """Write a plain header + rows table as CSV.

    Generic building block shared by the table exporters below and the sweep
    runner's record export (:mod:`repro.runner.results`).
    """

    def write(stream: TextIO) -> None:
        # '\n' instead of the csv default '\r\n': the destination may be an
        # already-open newline-translating stream (e.g. sys.stdout), where
        # '\r\n' would come out as '\r\r\n' on Windows.
        writer = csv.writer(stream, lineterminator="\n")
        writer.writerow(header)
        writer.writerows(rows)

    _open_and_call(destination, write)


def table_to_csv(table: TableResult, destination: Destination) -> None:
    """Write a :class:`TableResult` as CSV.

    Columns: benchmark, threads, events, density, then one time column and
    one memory column per backend.
    """

    def write(stream: TextIO) -> None:
        writer = csv.writer(stream)
        header = ["benchmark", "threads", "events", "density"]
        header += [f"{backend}_seconds" for backend in table.backends]
        header += [f"{backend}_peak_bytes" for backend in table.backends]
        writer.writerow(header)
        for row in table.rows:
            record = [row.benchmark, row.threads, row.events, f"{row.density:.4f}"]
            record += [f"{row.seconds.get(backend, ''):.6f}" if backend in row.seconds
                       else "" for backend in table.backends]
            record += [row.memory.get(backend, "") for backend in table.backends]
            writer.writerow(record)
        totals = table.totals()
        writer.writerow(
            ["TOTAL", "", "", ""]
            + [f"{totals.get(backend, 0.0):.6f}" for backend in table.backends]
            + ["" for _ in table.backends]
        )

    _open_and_call(destination, write)


def table_to_csv_string(table: TableResult) -> str:
    """Return the CSV rendering of ``table`` as a string."""
    buffer = io.StringIO()
    table_to_csv(table, buffer)
    return buffer.getvalue()


def figure11_to_csv(figure: Figure11Result, destination: Destination) -> None:
    """Write the scalability measurements as CSV."""

    def write(stream: TextIO) -> None:
        writer = csv.writer(stream)
        writer.writerow(["backend", "num_chains", "chain_length",
                         "insert_seconds", "query_seconds",
                         "inserted_edges", "queries"])
        for point in sorted(figure.points,
                            key=lambda p: (p.backend, p.num_chains, p.chain_length)):
            writer.writerow([
                point.backend, point.num_chains, point.chain_length,
                f"{point.insert_seconds:.9f}", f"{point.query_seconds:.9f}",
                point.inserted_edges, point.queries,
            ])

    _open_and_call(destination, write)


def crossover_to_csv(result: CrossoverResult, destination: Destination) -> None:
    """Write the crossover measurements as CSV."""

    def write(stream: TextIO) -> None:
        writer = csv.writer(stream)
        writer.writerow(["backend", "events_per_thread", "seconds",
                         "insert_count", "query_count"])
        for point in sorted(result.points,
                            key=lambda p: (p.backend, p.events_per_thread)):
            writer.writerow([
                point.backend, point.events_per_thread, f"{point.seconds:.6f}",
                point.insert_count, point.query_count,
            ])

    _open_and_call(destination, write)
