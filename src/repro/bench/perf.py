"""Perf-regression harness (``python -m repro bench perf``).

The repo's first recorded perf trajectory: a fixed suite of kernel and
analysis benchmarks is timed with warmup plus min-of-N repeats (timing runs
never execute under ``tracemalloc``), written to ``BENCH_<date>.json``, and
compared against the committed ``BENCH_baseline.json`` with a configurable
regression threshold.

Two kinds of cases:

* **Kernel cases** replay the Figure 11 scalability protocol (insert random
  windowed cross-chain edges between unordered endpoints, then issue batch
  reachability queries) against paired object/flat backends, plus a raw
  suffix-minima op mix on the two SST implementations.
* **Analysis cases** run whole analyses over fixed synthetic workloads on
  paired backends, so the columnar-trace fast paths are measured end to end.

Every case exists in a ``quick`` and a ``full`` size; regression checks only
compare like with like (the baseline file records both modes).  Absolute
seconds are machine-dependent -- the committed baseline anchors *this*
repo's reference machine and CI, and the default threshold (2x) absorbs
machine-to-machine variance; the ``speedups`` section (flat over object on
the same machine, same run) is the machine-independent signal.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import measure, render_table
from repro.bench.workloads import FIGURE11_WINDOW
from repro.errors import BenchmarkError

PERF_FORMAT_VERSION = 1
DEFAULT_REPEATS = 3
DEFAULT_WARMUP = 1
DEFAULT_THRESHOLD = 2.0
BASELINE_FILENAME = "BENCH_baseline.json"


@dataclass(frozen=True)
class PerfCase:
    """One named benchmark: ``setup(quick)`` returns the timed callable.

    Setup cost (trace generation, candidate-edge precomputation) runs
    outside the timed region; the returned callable must be re-runnable
    (each repeat calls it afresh).
    """

    name: str
    setup: Callable[[bool], Callable[[], object]]


#: ``(fast case, slow case, label)`` -- pairs reported under ``speedups``.
SPEEDUP_PAIRS: Sequence[Tuple[str, str, str]] = (
    ("fig11/csst-flat", "fig11/csst", "csst-flat-over-csst"),
    ("fig11/incremental-csst-flat", "fig11/incremental-csst",
     "incremental-csst-flat-over-incremental-csst"),
    ("fig11/vc-flat", "fig11/vc", "vc-flat-over-vc"),
    ("sst-ops/flat", "sst-ops/object", "flat-sst-over-sst"),
    ("race-prediction/incremental-csst-flat",
     "race-prediction/incremental-csst",
     "race-prediction-flat-over-object"),
    ("c11-races/vc-flat", "c11-races/vc", "c11-flat-over-object"),
    ("use-after-free/incremental-csst-flat",
     "use-after-free/incremental-csst", "uaf-flat-over-object"),
    ("scn-locked-mix/incremental-csst-flat",
     "scn-locked-mix/incremental-csst", "scn-locked-mix-flat-over-object"),
    ("scn-mpmc-queue/vc-flat", "scn-mpmc-queue/vc",
     "scn-mpmc-flat-over-object"),
    ("trace-load/stc", "trace-load/std", "stc-parse-over-std-parse"),
    # auto over its best static backend: the ratio is the selection
    # overhead of the `auto` pseudo-backend (target: < 1.05x).
    ("fig11/incremental-csst-flat", "fig11/auto",
     "fig11-auto-over-best-static"),
    ("race-prediction/incremental-csst-flat", "race-prediction/auto",
     "race-prediction-auto-over-best-static"),
    ("c11-races/vc-flat", "c11-races/auto", "c11-auto-over-best-static"),
)


# --------------------------------------------------------------------------- #
# Case builders
# --------------------------------------------------------------------------- #
#: Backends the Figure 11 kernel runs on -- also the candidate list the
#: ``fig11/auto`` case hands its selection policy.
FIG11_BACKENDS: Sequence[str] = (
    "csst", "csst-flat", "incremental-csst", "incremental-csst-flat",
    "vc", "vc-flat")


def _fig11_protocol(quick: bool):
    """Backend-independent setup of the Figure 11 protocol: the candidate
    cross-chain edges and the batch query mix, shared by every
    ``fig11/*`` case (all seeds are fixed, so every backend replays the
    identical protocol)."""
    from repro.trace.generators import random_cross_edges

    num_chains = 10
    chain_length = 250 if quick else 1000
    queries = 400 if quick else 2000
    candidates = random_cross_edges(
        num_chains, chain_length, count=chain_length,
        window=FIGURE11_WINDOW, seed=7)
    rng = random.Random(1234)
    query_pairs = [
        ((rng.randrange(num_chains), rng.randrange(chain_length)),
         (rng.randrange(num_chains), rng.randrange(chain_length)))
        for _ in range(queries)
    ]
    return num_chains, chain_length, candidates, query_pairs


def _fig11_run(backend: str, protocol) -> object:
    """Replay one prepared protocol on one backend."""
    from repro.core import make_partial_order

    num_chains, chain_length, candidates, query_pairs = protocol
    order = make_partial_order(backend, num_chains, chain_length)
    inserted = 0
    reachable = order.reachable
    insert = order.insert_edge
    for source, target in candidates:
        if reachable(source, target) or reachable(target, source):
            continue
        insert(source, target)
        inserted += 1
    return inserted, sum(order.query_many(query_pairs))


def _fig11_kernel(backend: str) -> Callable[[bool], Callable[[], object]]:
    """The Figure 11 scalability protocol on one backend."""

    def setup(quick: bool) -> Callable[[], object]:
        protocol = _fig11_protocol(quick)

        def run() -> object:
            return _fig11_run(backend, protocol)

        return run

    return setup


def _fig11_auto_kernel() -> Callable[[bool], Callable[[], object]]:
    """Figure 11 with the backend picked per run by the heuristic policy.

    A proxy trace of the protocol's shape is generated in setup; the
    timed region covers feature extraction + the policy pick + the chosen
    kernel, so the ``*-auto-over-best-static`` speedup pair measures pure
    selection overhead (the pick lands on the best static backend)."""

    def setup(quick: bool) -> Callable[[], object]:
        from repro.trace.generators import build_trace
        from repro.tune import HeuristicPolicy, extract_features

        protocol = _fig11_protocol(quick)
        chain_length = protocol[1]
        proxy = build_trace("racy", num_threads=10, events=chain_length,
                            seed=7)
        policy = HeuristicPolicy()

        def run() -> object:
            features = extract_features(proxy)
            chosen = policy.choose("fig11", FIG11_BACKENDS, features)
            return _fig11_run(chosen, protocol)

        return run

    return setup


def _sst_kernel(flat: bool) -> Callable[[bool], Callable[[], object]]:
    """A scripted update/clear/suffix_min/argleq mix on one SST flavour."""

    def setup(quick: bool) -> Callable[[], object]:
        from repro.core import INF

        operations = 4_000 if quick else 16_000
        rng = random.Random(99)
        script: List[Tuple[str, int]] = []
        live: List[int] = []
        for _ in range(operations):
            roll = rng.random()
            if roll < 0.45 or not live:
                index = rng.randrange(4096)
                script.append(("u", index, rng.randrange(100_000)))
                live.append(index)
            elif roll < 0.60:
                script.append(("c", live.pop(rng.randrange(len(live))), 0))
            elif roll < 0.80:
                script.append(("s", rng.randrange(4096), 0))
            else:
                script.append(("a", rng.randrange(100_000), 0))

        def run() -> object:
            from repro.core import FlatSparseSegmentTree, SparseSegmentTree

            tree = (FlatSparseSegmentTree(1024) if flat
                    else SparseSegmentTree(1024))
            checksum = 0
            for op, first, second in script:
                if op == "u":
                    tree.update(first, second)
                elif op == "c":
                    tree.update(first, INF)
                elif op == "s":
                    value = tree.suffix_min(first)
                    if value != INF:
                        checksum += int(value)
                else:
                    result = tree.argleq(first)
                    if result is not None:
                        checksum += result
            return checksum

        return run

    return setup


def _analysis_case(analysis: str, backend: str, generator: str,
                   **generator_kwargs) -> Callable[[bool], Callable[[], object]]:
    """One full analysis over a fixed synthetic workload."""

    def setup(quick: bool) -> Callable[[], object]:
        from repro.analyses.common.base import Analysis
        from repro.trace.generators import build_trace

        kwargs = dict(generator_kwargs)
        if quick:
            kwargs["events"] = max(8, kwargs["events"] // 4)
        trace = build_trace(generator, **kwargs)
        cls = Analysis.by_name(analysis)

        def run() -> object:
            return cls(backend).run(trace).finding_count

        return run

    return setup


def _trace_load_case() -> Callable[[bool], Callable[[], object]]:
    """STD-format parse throughput (exercises the enum lookup tables)."""

    def setup(quick: bool) -> Callable[[], object]:
        from repro.trace.formats import dumps_trace, loads_trace
        from repro.trace.generators import build_trace

        trace = build_trace("c11", num_threads=6,
                            events=150 if quick else 600, seed=5)
        text = dumps_trace(trace)

        def run() -> object:
            return len(loads_trace(text))

        return run

    return setup


def _stc_load_case() -> Callable[[bool], Callable[[], object]]:
    """`.stc` binary-format ingest throughput on the same workload.

    Decodes the blob and builds the columnar views without materializing
    a single :class:`Event` -- the zero-copy fast path the format exists
    for.  Paired with ``trace-load/std`` under ``speedups``.
    """

    def setup(quick: bool) -> Callable[[], object]:
        from repro.trace.binfmt import decode_trace, encode_trace
        from repro.trace.generators import build_trace

        trace = build_trace("c11", num_threads=6,
                            events=150 if quick else 600, seed=5)
        blob = encode_trace(trace)

        def run() -> object:
            loaded = decode_trace(blob)
            loaded.columns()
            return len(loaded)

        return run

    return setup


def default_cases() -> List[PerfCase]:
    """The fixed perf suite (order is the report order)."""
    cases = [
        PerfCase(f"fig11/{backend}", _fig11_kernel(backend))
        for backend in FIG11_BACKENDS
    ]
    cases.append(PerfCase("fig11/auto", _fig11_auto_kernel()))
    cases.append(PerfCase("sst-ops/object", _sst_kernel(flat=False)))
    cases.append(PerfCase("sst-ops/flat", _sst_kernel(flat=True)))
    # "auto" analysis cases resolve the backend inside run(), so their
    # seconds include the per-run feature extraction + policy pick.
    for backend in ("incremental-csst", "incremental-csst-flat", "auto"):
        cases.append(PerfCase(
            f"race-prediction/{backend}",
            _analysis_case("race-prediction", backend, "racy",
                           num_threads=4, events=400, seed=11)))
    for backend in ("vc", "vc-flat", "auto"):
        cases.append(PerfCase(
            f"c11-races/{backend}",
            _analysis_case("c11-races", backend, "c11",
                           num_threads=8, events=500, seed=12)))
    for backend in ("incremental-csst", "incremental-csst-flat"):
        cases.append(PerfCase(
            f"use-after-free/{backend}",
            _analysis_case("use-after-free", backend, "memory",
                           num_threads=5, events=400, seed=13)))
    # Scenario-program (repro.gen) workloads: schedule-driven interleavings
    # whose cross-chain shape the hand-rolled generators cannot produce.
    for backend in ("incremental-csst", "incremental-csst-flat"):
        cases.append(PerfCase(
            f"scn-locked-mix/{backend}",
            _analysis_case("race-prediction", backend, "locked-mix",
                           num_threads=6, events=300, seed=21,
                           scheduler="adversarial")))
    for backend in ("vc", "vc-flat"):
        cases.append(PerfCase(
            f"scn-mpmc-queue/{backend}",
            _analysis_case("c11-races", backend, "mpmc-queue",
                           num_threads=8, events=260, seed=22,
                           scheduler="weighted")))
    cases.append(PerfCase("trace-load/std", _trace_load_case()))
    cases.append(PerfCase("trace-load/stc", _stc_load_case()))
    return cases


# --------------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------------- #
def run_perf(quick: bool = False, repeats: int = DEFAULT_REPEATS,
             warmup: int = DEFAULT_WARMUP,
             cases: Optional[Sequence[PerfCase]] = None) -> Dict[str, object]:
    """Run the perf suite and return the result document.

    Timing is min-of-``repeats`` after ``warmup`` throwaway runs, and no
    timing run executes under ``tracemalloc``.
    """
    if repeats < 1:
        raise BenchmarkError(f"repeats must be >= 1, got {repeats}")
    if cases is None:
        cases = default_cases()
    results: Dict[str, Dict[str, object]] = {}
    for case in cases:
        runnable = case.setup(quick)
        for _ in range(warmup):
            runnable()
        runs = [measure(runnable, track_memory=False).seconds
                for _ in range(repeats)]
        results[case.name] = {"seconds": min(runs), "runs": runs}
    return {
        "version": PERF_FORMAT_VERSION,
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "warmup": warmup,
        "python": platform.python_version(),
        "results": results,
        "speedups": compute_speedups(results),
    }


def compute_speedups(results: Dict[str, Dict[str, object]]) -> Dict[str, float]:
    """Slow-over-fast ratios for every pair present in ``results``:
    flat over object, ``.stc`` parse over STD parse, and ``auto`` over
    its best static backend (selection overhead)."""
    speedups: Dict[str, float] = {}
    for fast, slow, label in SPEEDUP_PAIRS:
        fast_entry = results.get(fast)
        slow_entry = results.get(slow)
        if fast_entry is None or slow_entry is None:
            continue
        fast_seconds = float(fast_entry["seconds"])
        if fast_seconds > 0:
            speedups[label] = float(slow_entry["seconds"]) / fast_seconds
    return speedups


def build_baseline(repeats: int = DEFAULT_REPEATS,
                   warmup: int = DEFAULT_WARMUP,
                   cases: Optional[Sequence[PerfCase]] = None
                   ) -> Dict[str, object]:
    """Run both modes and assemble a baseline document."""
    quick = run_perf(quick=True, repeats=repeats, warmup=warmup, cases=cases)
    full = run_perf(quick=False, repeats=repeats, warmup=warmup, cases=cases)
    return {
        "version": PERF_FORMAT_VERSION,
        "created": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "repeats": repeats,
        "modes": {"quick": quick, "full": full},
    }


# --------------------------------------------------------------------------- #
# Comparison
# --------------------------------------------------------------------------- #
def compare_documents(current: Dict[str, object], baseline: Dict[str, object],
                      threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = clean).

    Only the matching mode section of the baseline is consulted; a baseline
    without that mode yields a single advisory entry prefixed ``note:``
    (which :func:`is_regression` ignores).
    """
    if threshold <= 0:
        raise BenchmarkError(f"threshold must be > 0, got {threshold}")
    mode = str(current.get("mode", "full"))
    base = baseline.get("modes", {}).get(mode)
    if base is None:
        return [f"note: baseline has no {mode!r} mode section; "
                f"regression check skipped"]
    base_results = base.get("results", {})
    regressions: List[str] = []
    for name, entry in current.get("results", {}).items():
        reference = base_results.get(name)
        if reference is None:
            continue
        current_seconds = float(entry["seconds"])
        reference_seconds = float(reference["seconds"])
        if reference_seconds > 0 and current_seconds > reference_seconds * threshold:
            regressions.append(
                f"{name}: {current_seconds:.4f}s vs baseline "
                f"{reference_seconds:.4f}s "
                f"({current_seconds / reference_seconds:.2f}x > "
                f"{threshold:.2f}x threshold)")
    return regressions


def is_regression(entries: Sequence[str]) -> bool:
    """Whether a :func:`compare_documents` result contains real regressions."""
    return any(not entry.startswith("note:") for entry in entries)


# --------------------------------------------------------------------------- #
# Reporting / persistence
# --------------------------------------------------------------------------- #
def format_report(document: Dict[str, object]) -> str:
    """Human-readable report of one perf run."""
    results = document.get("results", {})
    rows = [[name, f"{float(entry['seconds']):.4f}",
             " ".join(f"{run:.4f}" for run in entry.get("runs", ()))]
            for name, entry in results.items()]
    title = (f"perf[{document.get('mode', 'full')}]: {len(rows)} cases, "
             f"min of {document.get('repeats', '?')} repeats")
    report = render_table(title, ["case", "seconds", "runs"], rows)
    speedups = document.get("speedups", {})
    if speedups:
        lines = [f"  {label}: {ratio:.2f}x"
                 for label, ratio in speedups.items()]
        report += "\nspeedup ratios:\n" + "\n".join(lines)
    return report


def default_output_path() -> str:
    """``BENCH_<date>.json`` in the current directory; when that file
    already exists (a second run on the same day), ``BENCH_<date>-1.json``,
    ``-2``, ... so earlier reports are never silently overwritten."""
    stem = f"BENCH_{datetime.date.today().isoformat()}"
    path = f"{stem}.json"
    suffix = 0
    while os.path.exists(path):
        suffix += 1
        path = f"{stem}-{suffix}.json"
    return path


def write_document(document: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")


def read_document(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)
