"""Regeneration of the paper's tables and figures.

Each ``run_table*`` function reproduces one table of Section 5: it runs the
corresponding analysis over the table's workloads once per partial-order
backend and collects wall-clock time and peak memory into a
:class:`~repro.bench.harness.TableResult`.  :func:`run_figure10` aggregates
the per-table results into the geometric-mean resource ratios of Figure 10,
and :func:`run_figure11` reproduces the controlled scalability experiment of
Figure 11.

The ``benchmarks/`` pytest suites call these functions with small scales;
``python -m repro.bench`` runs them all and prints paper-style tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analyses.c11 import C11RaceAnalysis
from repro.analyses.common.base import Analysis
from repro.analyses.deadlock import DeadlockPredictionAnalysis
from repro.analyses.linearizability import LinearizabilityAnalysis
from repro.analyses.membug import MemoryBugAnalysis
from repro.analyses.race_prediction import RacePredictionAnalysis
from repro.analyses.tso import TSOConsistencyAnalysis
from repro.analyses.uaf import UseAfterFreeAnalysis
from repro.bench.harness import BenchmarkRow, MeasuredRun, TableResult, geometric_mean, measure
from repro.bench.workloads import (
    FIGURE11_CHAIN_COUNTS,
    FIGURE11_CHAIN_LENGTHS,
    FIGURE11_WINDOW,
    TABLE1_RACE_PREDICTION,
    TABLE2_DEADLOCK,
    TABLE3_MEMORY_BUGS,
    TABLE4_TSO,
    TABLE5_UAF,
    TABLE6_C11,
    TABLE7_LINEARIZABILITY,
    Workload,
)
from repro.core import DYNAMIC_BACKENDS, INCREMENTAL_BACKENDS, make_partial_order
from repro.trace.generators import random_cross_edges
from repro.trace.trace import Trace

#: Human-readable labels for backend names (column headers in the paper).
BACKEND_LABELS = {
    "vc": "VCs",
    "st": "STs",
    "incremental-csst": "CSSTs",
    "csst": "CSSTs (dyn)",
    "graph": "Graphs",
}


def run_analysis_table(title: str, workloads: Sequence[Workload],
                       analysis_factory: Callable[..., Analysis],
                       backends: Sequence[str],
                       scale: float = 1.0,
                       track_memory: bool = True) -> TableResult:
    """Run ``analysis_factory(backend)`` over every workload and backend."""
    table = TableResult(title=title, backends=list(backends))
    for workload in workloads:
        trace = workload.build(scale)
        row = BenchmarkRow(
            benchmark=workload.name,
            threads=trace.num_threads,
            events=len(trace),
        )
        row.density = estimate_density(trace, analysis_factory, workload)
        for backend in backends:
            analysis = analysis_factory(backend, **workload.analysis_kwargs)
            run = measure(lambda a=analysis: a.run(trace), track_memory=track_memory)
            row.seconds[backend] = run.seconds
            row.memory[backend] = run.peak_memory_bytes
            row.extra[backend] = run.value
        table.add_row(row)
    return table


def estimate_density(trace: Trace, analysis_factory: Callable[..., Analysis],
                     workload: Workload) -> float:
    """Estimate the paper's ``q`` column: the densest suffix-minima array of
    a CSST run, normalised by the chain length."""
    probe = analysis_factory("incremental-csst", **workload.analysis_kwargs)
    kind = "csst" if probe.requires_deletion else "incremental-csst"
    backend = make_partial_order(
        kind,
        num_chains=probe._num_chains(trace),
        capacity_hint=max(trace.max_thread_length, 1),
    )
    analysis_with_instance = analysis_factory(backend, **workload.analysis_kwargs)
    analysis_with_instance.run(trace)
    chain_length = max(trace.max_thread_length, 1)
    return min(1.0, backend.max_array_density / chain_length)


# --------------------------------------------------------------------------- #
# Tables 1-7
# --------------------------------------------------------------------------- #
def run_table1(backends: Sequence[str] = INCREMENTAL_BACKENDS,
               scale: float = 1.0, track_memory: bool = True) -> TableResult:
    """Table 1: predictive data-race detection."""
    return run_analysis_table(
        "Table 1: race prediction", TABLE1_RACE_PREDICTION,
        RacePredictionAnalysis, backends, scale, track_memory,
    )


def run_table2(backends: Sequence[str] = INCREMENTAL_BACKENDS,
               scale: float = 1.0, track_memory: bool = True) -> TableResult:
    """Table 2: predictive deadlock detection."""
    return run_analysis_table(
        "Table 2: deadlock prediction", TABLE2_DEADLOCK,
        DeadlockPredictionAnalysis, backends, scale, track_memory,
    )


def run_table3(backends: Sequence[str] = INCREMENTAL_BACKENDS,
               scale: float = 1.0, track_memory: bool = True) -> TableResult:
    """Table 3: predictive memory-bug detection."""
    return run_analysis_table(
        "Table 3: memory-bug prediction", TABLE3_MEMORY_BUGS,
        MemoryBugAnalysis, backends, scale, track_memory,
    )


def run_table4(backends: Sequence[str] = INCREMENTAL_BACKENDS,
               scale: float = 1.0, track_memory: bool = True) -> TableResult:
    """Table 4: x86-TSO consistency checking (two chains per thread)."""
    return run_analysis_table(
        "Table 4: x86-TSO consistency checking", TABLE4_TSO,
        TSOConsistencyAnalysis, backends, scale, track_memory,
    )


def run_table5(backends: Sequence[str] = INCREMENTAL_BACKENDS,
               scale: float = 1.0, track_memory: bool = True) -> TableResult:
    """Table 5: use-after-free query generation."""
    return run_analysis_table(
        "Table 5: use-after-free prediction", TABLE5_UAF,
        UseAfterFreeAnalysis, backends, scale, track_memory,
    )


def run_table6(backends: Sequence[str] = INCREMENTAL_BACKENDS,
               scale: float = 1.0, track_memory: bool = True) -> TableResult:
    """Table 6: data-race detection for the C11 memory model."""
    return run_analysis_table(
        "Table 6: C11 race detection", TABLE6_C11,
        C11RaceAnalysis, backends, scale, track_memory,
    )


def run_table7(backends: Sequence[str] = DYNAMIC_BACKENDS,
               scale: float = 1.0, track_memory: bool = True) -> TableResult:
    """Table 7: root-causing linearizability violations (fully dynamic)."""
    return run_analysis_table(
        "Table 7: linearizability root-causing", TABLE7_LINEARIZABILITY,
        LinearizabilityAnalysis, backends, scale, track_memory,
    )


ALL_TABLE_RUNNERS: Dict[str, Callable[..., TableResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
}


# --------------------------------------------------------------------------- #
# Figure 10: geometric-mean resource ratios over CSSTs
# --------------------------------------------------------------------------- #
@dataclass
class Figure10Result:
    """Per-analysis geometric-mean time and memory ratios over CSSTs."""

    time_ratios: Dict[str, Dict[str, float]] = field(default_factory=dict)
    memory_ratios: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        lines = ["Figure 10: mean resource ratio over CSSTs", "-" * 60]
        for analysis in self.time_ratios:
            time_part = ", ".join(
                f"{BACKEND_LABELS.get(b, b)} {ratio:.2f}x"
                for b, ratio in self.time_ratios[analysis].items()
            )
            memory_part = ", ".join(
                f"{BACKEND_LABELS.get(b, b)} {ratio:.2f}x"
                for b, ratio in self.memory_ratios.get(analysis, {}).items()
            )
            lines.append(f"{analysis:12s} time: {time_part}")
            if memory_part:
                lines.append(f"{'':12s} mem : {memory_part}")
        lines.append("-" * 60)
        return "\n".join(lines)


def run_figure10(scale: float = 1.0,
                 tables: Optional[Dict[str, TableResult]] = None) -> Figure10Result:
    """Aggregate every table into the Figure 10 summary.

    ``tables`` may carry pre-computed table results (e.g. from a benchmark
    session) to avoid re-running everything.
    """
    if tables is None:
        tables = {name: runner(scale=scale) for name, runner in ALL_TABLE_RUNNERS.items()}
    figure = Figure10Result()
    for name, table in tables.items():
        reference = "csst" if "csst" in table.backends else "incremental-csst"
        figure.time_ratios[name] = table.mean_ratios(reference, "seconds")
        figure.memory_ratios[name] = table.mean_ratios(reference, "memory")
    return figure


# --------------------------------------------------------------------------- #
# Crossover experiment: where the paper's regime begins
# --------------------------------------------------------------------------- #
@dataclass
class CrossoverPoint:
    """One measurement of the crossover experiment."""

    backend: str
    events_per_thread: int
    seconds: float
    insert_count: int
    query_count: int


@dataclass
class CrossoverResult:
    """Analysis time as a function of trace length, per backend.

    The paper's headline result -- CSSTs beating Vector Clocks on
    non-streaming analyses -- relies on traces being long relative to the
    number of threads, so that the O(n) propagation cost of Vector Clock
    insertions dominates their O(1) queries.  This experiment makes the
    regime change visible on the scaled-down Python reproduction: it runs
    the TSO consistency analysis (the most update-heavy analysis of the
    evaluation) over traces of growing length and reports the total
    analysis time per backend.
    """

    points: List[CrossoverPoint] = field(default_factory=list)

    def series(self, backend: str) -> List[Tuple[int, float]]:
        return sorted(
            (point.events_per_thread, point.seconds)
            for point in self.points
            if point.backend == backend
        )

    def format(self) -> str:
        lines = ["Crossover: TSO consistency time vs events per thread", "-" * 66]
        lines.append(f"{'backend':20s} {'events/thread':>14s} {'seconds':>9s}")
        for point in sorted(self.points, key=lambda p: (p.backend, p.events_per_thread)):
            lines.append(
                f"{BACKEND_LABELS.get(point.backend, point.backend):20s} "
                f"{point.events_per_thread:>14d} {point.seconds:>9.2f}"
            )
        lines.append("-" * 66)
        return "\n".join(lines)


def run_crossover(backends: Sequence[str] = INCREMENTAL_BACKENDS,
                  events_per_thread: Sequence[int] = (800, 1600, 3200),
                  num_threads: int = 3, stale_read_fraction: float = 0.15,
                  seed: int = 9) -> CrossoverResult:
    """Run the crossover experiment (see :class:`CrossoverResult`).

    The workload contains occasional stale reads (store-buffer style
    reorderings that are not always TSO-explainable), so the checker both
    builds the full store-buffer order and hunts for a violation witness --
    the insertion-dominated usage pattern in which the paper's comparison
    operates.
    """
    from repro.analyses.tso import TSOConsistencyAnalysis
    from repro.trace.generators import tso_trace

    result = CrossoverResult()
    for events in events_per_thread:
        trace = tso_trace(
            num_threads=num_threads,
            events_per_thread=events,
            num_variables=max(8, events // 25),
            stale_read_fraction=stale_read_fraction,
            seed=seed,
            name=f"crossover-{events}",
        )
        for backend in backends:
            analysis = TSOConsistencyAnalysis(backend)
            outcome = analysis.run(trace)
            result.points.append(
                CrossoverPoint(
                    backend=backend,
                    events_per_thread=events,
                    seconds=outcome.elapsed_seconds,
                    insert_count=outcome.insert_count,
                    query_count=outcome.query_count,
                )
            )
    return result


# --------------------------------------------------------------------------- #
# Figure 11: controlled scalability experiment
# --------------------------------------------------------------------------- #
@dataclass
class ScalabilityPoint:
    """One data point of Figure 11."""

    backend: str
    num_chains: int
    chain_length: int
    insert_seconds: float     #: mean seconds per successful edge insertion
    query_seconds: float      #: mean seconds per reachability query
    inserted_edges: int
    queries: int


@dataclass
class Figure11Result:
    """All measured points of the scalability experiment."""

    points: List[ScalabilityPoint] = field(default_factory=list)

    def series(self, backend: str, num_chains: int, metric: str = "insert_seconds"
               ) -> List[Tuple[int, float]]:
        """The (chain length, value) series for one backend and chain count."""
        return sorted(
            (point.chain_length, getattr(point, metric))
            for point in self.points
            if point.backend == backend and point.num_chains == num_chains
        )

    def format(self) -> str:
        lines = ["Figure 11: scalability (mean seconds per operation)", "-" * 78]
        lines.append(
            f"{'backend':18s} {'k':>3s} {'len':>7s} {'insert (us)':>12s} {'query (us)':>12s}"
        )
        for point in sorted(self.points, key=lambda p: (p.backend, p.num_chains,
                                                        p.chain_length)):
            lines.append(
                f"{BACKEND_LABELS.get(point.backend, point.backend):18s} "
                f"{point.num_chains:>3d} {point.chain_length:>7d} "
                f"{point.insert_seconds * 1e6:>12.2f} {point.query_seconds * 1e6:>12.2f}"
            )
        lines.append("-" * 78)
        return "\n".join(lines)


def run_figure11(backends: Sequence[str] = INCREMENTAL_BACKENDS,
                 chain_lengths: Sequence[int] = FIGURE11_CHAIN_LENGTHS,
                 chain_counts: Sequence[int] = FIGURE11_CHAIN_COUNTS,
                 edges_per_length: float = 1.0, queries: int = 2_000,
                 window: int = FIGURE11_WINDOW, seed: int = 7) -> Figure11Result:
    """Reproduce the Figure 11 protocol.

    For every combination of backend, chain count ``k`` and chain length
    ``l``: start from an empty order of ``k`` chains, attempt to insert
    ``edges_per_length * l`` random windowed cross-chain edges between
    unordered endpoints (measuring mean insertion time), then issue
    ``queries`` random reachability queries (measuring mean query time).
    The paper attempts ``20 l`` edges; the default here is ``1 l`` to keep
    the pure-Python Vector Clock baseline (linear-time insertions) from
    dominating the benchmark wall-clock.
    """
    import random

    figure = Figure11Result()
    for num_chains in chain_counts:
        for chain_length in chain_lengths:
            candidates = random_cross_edges(
                num_chains, chain_length,
                count=max(1, int(edges_per_length * chain_length)),
                window=window, seed=seed,
            )
            rng = random.Random(seed + chain_length)
            query_nodes = [
                (
                    (rng.randrange(num_chains), rng.randrange(chain_length)),
                    (rng.randrange(num_chains), rng.randrange(chain_length)),
                )
                for _ in range(queries)
            ]
            for backend in backends:
                order = make_partial_order(backend, num_chains, chain_length)
                inserted = 0
                insert_time = 0.0
                for source, target in candidates:
                    if order.reachable(source, target) or order.reachable(target, source):
                        continue
                    start = time.perf_counter()
                    order.insert_edge(source, target)
                    insert_time += time.perf_counter() - start
                    inserted += 1
                query_start = time.perf_counter()
                for source, target in query_nodes:
                    order.reachable(source, target)
                query_time = time.perf_counter() - query_start
                figure.points.append(
                    ScalabilityPoint(
                        backend=backend,
                        num_chains=num_chains,
                        chain_length=chain_length,
                        insert_seconds=insert_time / max(inserted, 1),
                        query_seconds=query_time / max(queries, 1),
                        inserted_edges=inserted,
                        queries=queries,
                    )
                )
    return figure
