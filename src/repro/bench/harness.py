"""Measurement and reporting helpers for the benchmark suites.

The paper reports, per benchmark and per data structure, the wall-clock time
of the whole analysis and (in Figure 10) the geometric mean of time and
memory ratios relative to CSSTs.  This module provides those pieces:
:func:`measure` runs a callable under ``tracemalloc`` and returns time and
peak memory, :class:`TableResult` accumulates per-benchmark rows, and
:func:`geometric_mean` aggregates ratios.
"""

from __future__ import annotations

import math
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class MeasuredRun:
    """Outcome of measuring one callable."""

    seconds: float
    peak_memory_bytes: int
    value: object = None


def measure(func: Callable[[], object], track_memory: bool = True) -> MeasuredRun:
    """Measure ``func``, returning wall-clock time and peak memory.

    Timing and memory come from *separate* runs: the timed run executes
    without ``tracemalloc`` (whose per-allocation hooks inflate wall-clock
    severely on allocation-heavy workloads, which used to contaminate every
    timing row), and, when ``track_memory`` is on, a second run under
    ``tracemalloc`` measures peak memory.  ``value`` comes from the timed
    run.  Consequence: with ``track_memory=True`` the callable executes
    twice and must be re-runnable -- every harness callable is (analyses
    build fresh state per ``run()``).
    """
    start = time.perf_counter()
    value = func()
    elapsed = time.perf_counter() - start
    peak = 0
    if track_memory:
        tracemalloc.start()
        try:
            func()
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    return MeasuredRun(seconds=elapsed, peak_memory_bytes=peak, value=value)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class BenchmarkRow:
    """One row of a paper-style table: a benchmark measured per backend."""

    benchmark: str
    threads: int
    events: int
    density: float = 0.0
    seconds: Dict[str, float] = field(default_factory=dict)
    memory: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    def ratio(self, backend: str, reference: str, metric: str = "seconds") -> Optional[float]:
        """Resource ratio ``backend / reference`` for the given metric."""
        values = self.seconds if metric == "seconds" else self.memory
        if backend not in values or reference not in values:
            return None
        if values[reference] == 0:
            return None
        return values[backend] / values[reference]


@dataclass
class TableResult:
    """A full table: a list of rows plus formatting helpers."""

    title: str
    backends: Sequence[str]
    rows: List[BenchmarkRow] = field(default_factory=list)

    def add_row(self, row: BenchmarkRow) -> None:
        self.rows.append(row)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def totals(self) -> Dict[str, float]:
        """Total seconds per backend (the paper's "Total" row)."""
        totals: Dict[str, float] = {}
        for backend in self.backends:
            totals[backend] = sum(row.seconds.get(backend, 0.0) for row in self.rows)
        return totals

    def mean_ratios(self, reference: str, metric: str = "seconds") -> Dict[str, float]:
        """Geometric-mean resource ratio of each backend over ``reference``.

        This is the quantity plotted in Figure 10 of the paper.
        """
        ratios: Dict[str, float] = {}
        for backend in self.backends:
            if backend == reference:
                continue
            values = [
                ratio for row in self.rows
                if (ratio := row.ratio(backend, reference, metric)) is not None
            ]
            if values:
                ratios[backend] = geometric_mean(values)
        return ratios

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def format(self, metric: str = "seconds") -> str:
        """Render the table in the style of the paper's tables."""
        headers = ["benchmark", "T", "N", "q"] + [
            f"{backend} ({'s' if metric == 'seconds' else 'KiB'})"
            for backend in self.backends
        ]
        lines: List[List[str]] = []
        for row in self.rows:
            values = row.seconds if metric == "seconds" else {
                backend: row.memory.get(backend, 0) / 1024.0
                for backend in self.backends
            }
            lines.append(
                [
                    row.benchmark,
                    str(row.threads),
                    _format_count(row.events),
                    f"{row.density:.2f}",
                ]
                + [_format_number(values.get(backend)) for backend in self.backends]
            )
        totals = self.totals()
        if metric == "seconds":
            lines.append(
                ["Total", "-", "-", "-"]
                + [_format_number(totals.get(backend)) for backend in self.backends]
            )
        return render_table(self.title, headers, lines)


def _format_count(value: int) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 1_000:
        return f"{value / 1_000:.1f}K"
    return str(value)


def _format_number(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Render a fixed-width text table in the style of the paper's tables.

    Shared by :class:`TableResult` and the sweep runner's report formatting.
    """
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise BenchmarkError("row width does not match header width")
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, separator, render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    lines.append(separator)
    return "\n".join(lines)
