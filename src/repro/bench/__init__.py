"""Benchmark harness: measurement helpers, workload configurations, the
functions that regenerate the paper's tables and figures, and the
perf-regression suite (:mod:`repro.bench.perf`, ``repro bench perf``)."""

from repro.bench.export import (
    crossover_to_csv,
    figure11_to_csv,
    rows_to_csv,
    table_to_csv,
    table_to_csv_string,
)
from repro.bench.harness import (
    BenchmarkRow,
    MeasuredRun,
    TableResult,
    geometric_mean,
    measure,
    render_table,
)
from repro.bench.tables import (
    ALL_TABLE_RUNNERS,
    BACKEND_LABELS,
    CrossoverResult,
    Figure10Result,
    Figure11Result,
    ScalabilityPoint,
    run_analysis_table,
    run_crossover,
    run_figure10,
    run_figure11,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)
from repro.bench.perf import (
    DEFAULT_THRESHOLD,
    PerfCase,
    build_baseline,
    compare_documents,
    run_perf,
)
from repro.bench.workloads import ALL_TABLES, Workload

__all__ = [
    "ALL_TABLES",
    "ALL_TABLE_RUNNERS",
    "BACKEND_LABELS",
    "BenchmarkRow",
    "CrossoverResult",
    "DEFAULT_THRESHOLD",
    "Figure10Result",
    "Figure11Result",
    "MeasuredRun",
    "PerfCase",
    "ScalabilityPoint",
    "TableResult",
    "Workload",
    "build_baseline",
    "compare_documents",
    "run_perf",
    "crossover_to_csv",
    "figure11_to_csv",
    "geometric_mean",
    "measure",
    "render_table",
    "rows_to_csv",
    "run_analysis_table",
    "run_crossover",
    "run_figure10",
    "run_figure11",
    "table_to_csv",
    "table_to_csv_string",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
]
