"""Command-line entry point: regenerate every table and figure.

Usage::

    python -m repro.bench                 # everything, default scale
    python -m repro.bench --scale 0.5     # smaller traces
    python -m repro.bench --tables table1,table7 --skip-figures
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from repro.bench.harness import TableResult
from repro.bench.tables import ALL_TABLE_RUNNERS, run_figure10, run_figure11
from repro.errors import ReproError, exit_code_for


def main(argv=None) -> int:
    """Run the selected tables/figures, mapping errors to the stable exit
    codes of :mod:`repro.errors` like the main CLI does."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe; mirror
        # repro.cli: nothing to report, 128+SIGPIPE.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="Scale factor on per-thread event counts (default 1.0).")
    parser.add_argument("--tables", type=str, default="all",
                        help="Comma-separated table ids (table1..table7) or 'all'.")
    parser.add_argument("--skip-figures", action="store_true",
                        help="Skip Figures 10 and 11.")
    parser.add_argument("--memory", action="store_true",
                        help="Also print the per-table memory columns.")
    args = parser.parse_args(argv)

    if args.tables == "all":
        selected = list(ALL_TABLE_RUNNERS)
    else:
        selected = [name.strip() for name in args.tables.split(",") if name.strip()]
        unknown = [name for name in selected if name not in ALL_TABLE_RUNNERS]
        if unknown:
            parser.error(f"unknown tables: {', '.join(unknown)}")

    results: Dict[str, TableResult] = {}
    for name in selected:
        table = ALL_TABLE_RUNNERS[name](scale=args.scale)
        results[name] = table
        print(table.format())
        if args.memory:
            print(table.format(metric="memory"))
        print()

    if not args.skip_figures:
        if set(selected) == set(ALL_TABLE_RUNNERS):
            print(run_figure10(tables=results).format())
            print()
        print(run_figure11().format())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
