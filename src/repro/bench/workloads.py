"""Benchmark workload configurations.

Each paper table evaluates one analysis over a set of named benchmarks.  We
mirror those datasets with synthetic workloads: every entry keeps the thread
count of the corresponding paper benchmark and scales the event count down
so that a pure-Python run completes in seconds rather than the 80 hours of
the original artifact (see DESIGN.md, "Substitutions").  The *relative*
behaviour of the data structures -- which is what Figure 10 and the tables
compare -- is preserved because the structural trace characteristics
(threads, synchronisation pattern, cross-chain density) are preserved.

All workloads are deterministic (fixed seeds) so repeated benchmark runs are
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.trace import generators
from repro.trace.trace import Trace


@dataclass(frozen=True)
class Workload:
    """A named benchmark workload: a trace generator plus analysis options."""

    name: str
    generator: Callable[..., Trace]
    generator_kwargs: Dict[str, object]
    analysis_kwargs: Dict[str, object] = field(default_factory=dict)

    def build(self, scale: float = 1.0) -> Trace:
        """Generate the trace, optionally scaling the per-thread event count."""
        kwargs = dict(self.generator_kwargs)
        for key in ("events_per_thread", "operations_per_thread"):
            if key in kwargs and scale != 1.0:
                kwargs[key] = max(8, int(kwargs[key] * scale))
        kwargs.setdefault("name", self.name)
        return self.generator(**kwargs)


def _racy(name: str, threads: int, events: int, variables: int, locks: int,
          seed: int, **analysis) -> Workload:
    return Workload(
        name,
        generators.racy_trace,
        {
            "num_threads": threads,
            "events_per_thread": events,
            "num_variables": variables,
            "num_locks": locks,
            "seed": seed,
        },
        analysis,
    )


def _deadlock(name: str, threads: int, events: int, locks: int, seed: int,
              **analysis) -> Workload:
    return Workload(
        name,
        generators.deadlock_trace,
        {
            "num_threads": threads,
            "events_per_thread": events,
            "num_locks": locks,
            "seed": seed,
        },
        analysis,
    )


def _memory(name: str, threads: int, events: int, objects: int, seed: int,
            **analysis) -> Workload:
    return Workload(
        name,
        generators.memory_trace,
        {
            "num_threads": threads,
            "events_per_thread": events,
            "num_objects": objects,
            "seed": seed,
        },
        analysis,
    )


def _tso(name: str, threads: int, events: int, variables: int, seed: int,
         stale: float = 0.0, **analysis) -> Workload:
    return Workload(
        name,
        generators.tso_trace,
        {
            "num_threads": threads,
            "events_per_thread": events,
            "num_variables": variables,
            "stale_read_fraction": stale,
            "seed": seed,
        },
        analysis,
    )


def _c11(name: str, threads: int, events: int, atomics: int, plains: int,
         seed: int, **analysis) -> Workload:
    return Workload(
        name,
        generators.c11_trace,
        {
            "num_threads": threads,
            "events_per_thread": events,
            "num_atomic_variables": atomics,
            "num_plain_variables": plains,
            "seed": seed,
        },
        analysis,
    )


def _history(name: str, threads: int, operations: int, structure: str,
             seed: int, violation: bool = True, **analysis) -> Workload:
    return Workload(
        name,
        generators.history_trace,
        {
            "num_threads": threads,
            "operations_per_thread": operations,
            "data_structure": structure,
            "inject_violation": violation,
            "seed": seed,
        },
        analysis,
    )


# --------------------------------------------------------------------------- #
# Table 1: race prediction (paper benchmarks: clean .. batik).
#
# The regime that matters for the data-structure comparison is long chains
# relative to the number of threads (n >> k): the saturation orderings then
# land deep inside the chains and Vector Clock propagation pays O(n) per
# insert while CSSTs pay O(log n).
# --------------------------------------------------------------------------- #
TABLE1_RACE_PREDICTION: Sequence[Workload] = (
    _racy("clean", 4, 350, 24, 3, seed=101, candidate_window=8),
    _racy("bubblesort", 5, 500, 30, 2, seed=102, candidate_window=8),
    _racy("lang", 4, 700, 40, 3, seed=103, candidate_window=8),
    _racy("readerswriters", 6, 600, 36, 2, seed=104, candidate_window=8),
    _racy("raytracer", 4, 900, 48, 4, seed=105, candidate_window=8),
    _racy("bufwriter", 5, 1000, 56, 3, seed=106, candidate_window=8),
    _racy("ftpserver", 6, 1100, 64, 5, seed=107, candidate_window=8),
)

# --------------------------------------------------------------------------- #
# Table 2: deadlock prediction (paper benchmarks: jigsaw .. eclipse).
# --------------------------------------------------------------------------- #
TABLE2_DEADLOCK: Sequence[Workload] = (
    _deadlock("jigsaw", 6, 300, 10, seed=201),
    _deadlock("elevator", 5, 400, 6, seed=202),
    _deadlock("hedc", 5, 500, 8, seed=203),
    _deadlock("JDBCMySQL", 3, 700, 4, seed=204),
    _deadlock("cache4j", 2, 900, 4, seed=205),
    _deadlock("Swing", 6, 650, 10, seed=206),
)

# --------------------------------------------------------------------------- #
# Table 3: memory-bug prediction (paper benchmarks: pbzip2 .. x265).
# --------------------------------------------------------------------------- #
TABLE3_MEMORY_BUGS: Sequence[Workload] = (
    _memory("pbzip2", 5, 400, 60, seed=301, max_candidates=400),
    _memory("pigz", 5, 550, 80, seed=302, max_candidates=400),
    _memory("xz", 2, 900, 60, seed=303, max_candidates=400),
    _memory("lbzip2", 6, 600, 100, seed=304, max_candidates=400),
    _memory("x264", 5, 800, 110, seed=305, max_candidates=400),
)

# --------------------------------------------------------------------------- #
# Table 4: x86-TSO consistency checking (paper benchmarks: dekker .. barrier).
# The chain DAG has two chains per thread (program order + store buffer).
# --------------------------------------------------------------------------- #
TABLE4_TSO: Sequence[Workload] = (
    _tso("dekker", 3, 350, 20, seed=401),
    _tso("peterson", 3, 450, 24, seed=402),
    _tso("lamport", 3, 550, 28, seed=403),
    _tso("dq", 4, 450, 28, seed=404),
    _tso("chase-lev", 5, 400, 32, seed=405),
    _tso("mcs-lock", 5, 550, 40, seed=406),
)

# --------------------------------------------------------------------------- #
# Table 5: use-after-free query generation (paper benchmarks: bbuf .. pbzip).
# --------------------------------------------------------------------------- #
TABLE5_UAF: Sequence[Workload] = (
    _memory("bbuf", 3, 550, 50, seed=501, max_candidates=400),
    _memory("BoundedBuffer", 6, 400, 70, seed=502, max_candidates=400),
    _memory("DiningPhil", 8, 350, 80, seed=503, max_candidates=400),
    _memory("fanger01-ok", 5, 500, 70, seed=504, max_candidates=400),
    _memory("qtsort", 6, 550, 90, seed=505, max_candidates=400),
)

# --------------------------------------------------------------------------- #
# Table 6: C11 race detection (paper benchmarks: dq .. atomicblocks).
# This workload is streaming, which is why the paper finds VCs competitive.
# --------------------------------------------------------------------------- #
TABLE6_C11: Sequence[Workload] = (
    _c11("dq", 5, 700, 4, 8, seed=601),
    _c11("mabain", 7, 600, 5, 10, seed=602),
    _c11("seqlock", 8, 500, 4, 8, seed=603),
    _c11("iris-1", 13, 400, 6, 12, seed=604),
    _c11("readerswriters", 13, 400, 4, 8, seed=605),
    _c11("atomicblocks", 16, 300, 6, 10, seed=606),
)

# --------------------------------------------------------------------------- #
# Table 7: root-causing linearizability violations (paper: three concurrent
# sets, accessed an increasing number of times).
# --------------------------------------------------------------------------- #
TABLE7_LINEARIZABILITY: Sequence[Workload] = (
    # Three concurrent objects, each accessed an increasing number of times
    # (mirroring the structure of the paper's Table 7).  The seeds are chosen
    # so that the commit-order search genuinely has to explore and backtrack;
    # the step bound keeps individual searches from running away.
    _history("LogicalOrderingAVL-s", 3, 14, "set", seed=701, spec="set", max_steps=30_000),
    _history("LogicalOrderingAVL-m", 3, 20, "set", seed=701, spec="set", max_steps=30_000),
    _history("LogicalOrderingAVL-l", 3, 26, "set", seed=701, spec="set", max_steps=30_000),
    _history("OptimisticList-s", 3, 14, "set", seed=704, spec="set", max_steps=30_000),
    _history("OptimisticList-m", 3, 20, "set", seed=704, spec="set", max_steps=30_000),
    _history("OptimisticList-l", 3, 26, "set", seed=704, spec="set", max_steps=30_000),
    _history("RWLockCoarseList-s", 3, 14, "set", seed=705, spec="set", max_steps=30_000),
    _history("RWLockCoarseList-m", 3, 20, "set", seed=705, spec="set", max_steps=30_000),
    _history("RWLockCoarseList-l", 3, 26, "set", seed=705, spec="set", max_steps=30_000),
)

#: Parameters of the Figure 11 scalability experiment, scaled down from the
#: paper's (4-8)x10^4 and (0.25-1)x10^6 events per chain.
FIGURE11_CHAIN_LENGTHS: Sequence[int] = (250, 500, 1000, 2000)
FIGURE11_CHAIN_COUNTS: Sequence[int] = (10, 20)
FIGURE11_WINDOW: int = 200

ALL_TABLES: Dict[str, Sequence[Workload]] = {
    "table1": TABLE1_RACE_PREDICTION,
    "table2": TABLE2_DEADLOCK,
    "table3": TABLE3_MEMORY_BUGS,
    "table4": TABLE4_TSO,
    "table5": TABLE5_UAF,
    "table6": TABLE6_C11,
    "table7": TABLE7_LINEARIZABILITY,
}
