"""Adaptive backend selection: the layer between analyses and the factory.

The ``auto`` pseudo-backend (:data:`repro.core.AUTO_BACKEND`) is resolved
here instead of in :func:`repro.core.make_partial_order`: a caller
extracts a :class:`TraceFeatures` vector from the trace's columns
(:func:`extract_features`, zero ``Event`` materialisation even on lazy
``.stc`` traces) and asks a :class:`BackendPolicy` to pick one of the
analysis's applicable backends (:func:`choose_backend`).  Measured
runtimes flow back through :meth:`BackendPolicy.observe` -- the sweep
executor does this automatically -- and the learned state round-trips
through JSON so sweeps warm-start watch sessions.

See ``docs/tuning.md`` for the workflow and the oracle/regret
validation mode of ``repro sweep``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.tune.features import FEATURE_NAMES, TraceFeatures, extract_features
from repro.tune.policy import (
    DEFAULT_POLICY,
    POLICY_NAMES,
    STATE_VERSION,
    BackendPolicy,
    BanditPolicy,
    HeuristicPolicy,
    StaticPolicy,
    make_policy,
    save_policy_state,
)

__all__ = [
    "BackendPolicy",
    "BanditPolicy",
    "DEFAULT_POLICY",
    "FEATURE_NAMES",
    "HeuristicPolicy",
    "POLICY_NAMES",
    "STATE_VERSION",
    "StaticPolicy",
    "TraceFeatures",
    "choose_backend",
    "extract_features",
    "make_policy",
    "resolve_backend",
    "save_policy_state",
]


def choose_backend(analysis_cls, features: TraceFeatures,
                   policy: BackendPolicy) -> str:
    """Pick a concrete backend for ``analysis_cls`` on a trace with
    ``features``.

    Candidates come from ``analysis_cls.applicable_backends()`` with the
    class default as tie-breaker, so the result is always a backend the
    analysis accepts.  Emits ``tune_pick_total{backend=,policy=}`` when
    metrics are active.
    """
    candidates = analysis_cls.applicable_backends()
    default = analysis_cls.default_backend()
    chosen = policy.choose(analysis_cls.name, candidates, features,
                           default=default)
    if chosen not in candidates:
        chosen = default if default in candidates else candidates[0]
    registry = obs_metrics.ACTIVE
    if registry is not None:
        registry.counter("tune_pick_total", backend=chosen,
                         policy=policy.name).inc()
    return chosen


def resolve_backend(analysis_cls, trace,
                    policy: Optional[BackendPolicy] = None
                    ) -> Tuple[str, TraceFeatures]:
    """Resolve ``auto`` for ``analysis_cls`` over ``trace``.

    Convenience wrapper: extract features, build the default policy when
    none is given, choose, and return ``(backend, features)`` so the
    caller can record the bucket alongside the pick.
    """
    if policy is None or isinstance(policy, str):
        policy = make_policy(policy)
    features = extract_features(trace)
    return choose_backend(analysis_cls, features, policy), features
