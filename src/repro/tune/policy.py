"""Backend-selection policies for the ``auto`` pseudo-backend.

Three policies sit behind one :class:`BackendPolicy` protocol:

* :class:`StaticPolicy` -- always the analysis's default backend
  (exactly the pre-``auto`` behaviour, useful as the control arm);
* :class:`HeuristicPolicy` -- hand-written rules distilled from
  ``BENCH_baseline.json``: flat variants dominate their object
  counterparts, vector clocks win atomic-heavy traces, incremental
  CSSTs win the rest;
* :class:`BanditPolicy` -- epsilon-greedy over observed runtimes, one
  arm per ``(analysis, feature-bucket, backend)``.  Its learned state
  round-trips through JSON (:func:`save_policy_state` /
  :func:`make_policy` with ``state_path``) so a sweep can warm-start a
  later watch session.

Policies *rank* candidates; they never invent one.  ``choose`` always
returns a member of the ``candidates`` sequence the caller derived from
``Analysis.applicable_backends()``, so a policy can never hand an
incremental-only analysis a deletion-based backend.
"""

from __future__ import annotations

import json
import os
import random
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import TuneError
from repro.tune.features import TraceFeatures

#: Version of the policy-state JSON document.
STATE_VERSION = 1

#: The selectable policy names, in documentation order.
POLICY_NAMES = ("static", "heuristic", "bandit")

#: Policy used when ``backend="auto"`` is requested without ``--policy``.
DEFAULT_POLICY = "heuristic"


class BackendPolicy:
    """Protocol (and inert base) for backend-selection policies.

    ``choose`` picks one backend out of ``candidates`` for a trace with
    the given ``features``; ``observe`` feeds a measured runtime back
    (a no-op for stateless policies); ``state_dict``/``load_state``
    round-trip any learned state through plain JSON-able dicts.
    """

    name = "static"

    def choose(self, analysis: str, candidates: Sequence[str],
               features: TraceFeatures,
               default: Optional[str] = None) -> str:
        raise NotImplementedError

    def observe(self, analysis: str, bucket: str, backend: str,
                elapsed_seconds: float) -> None:
        """Record a measured runtime; stateless policies ignore it."""

    def state_dict(self) -> Dict:
        return {"version": STATE_VERSION, "policy": self.name}

    def load_state(self, state: Dict) -> None:
        _check_state(state, self.name)

    @staticmethod
    def _fallback(candidates: Sequence[str],
                  default: Optional[str]) -> str:
        if not candidates:
            raise TuneError("cannot choose a backend from an empty "
                            "candidate list")
        if default is not None and default in candidates:
            return default
        return candidates[0]


class StaticPolicy(BackendPolicy):
    """Always the caller's default backend -- the pre-``auto`` behaviour."""

    name = "static"

    def choose(self, analysis: str, candidates: Sequence[str],
               features: TraceFeatures,
               default: Optional[str] = None) -> str:
        return self._fallback(candidates, default)


class HeuristicPolicy(BackendPolicy):
    """Fixed rules distilled from the repository perf baseline.

    ``BENCH_baseline.json`` (full mode) shows the flat structure-of-
    arrays variants beating their object counterparts across the board
    (fig11: ``incremental-csst-flat`` 0.069s vs ``incremental-csst``
    0.094s and ``vc`` 0.197s; ``csst-flat`` 0.43s vs ``csst`` 0.70s),
    while on atomic-heavy C11 traces the vector clocks win
    (``vc-flat`` 0.043s on c11-races).  Hence: prefer ``csst-flat``
    for deletion-based analyses, ``vc-flat`` when a meaningful share
    of events is atomic, and ``incremental-csst-flat`` otherwise.
    """

    name = "heuristic"

    #: Atomic-event fraction above which vector clocks are preferred.
    ATOMIC_THRESHOLD = 0.1

    def choose(self, analysis: str, candidates: Sequence[str],
               features: TraceFeatures,
               default: Optional[str] = None) -> str:
        preferences: List[str] = []
        if features.atomic_fraction > self.ATOMIC_THRESHOLD:
            preferences += ["vc-flat", "vc"]
        preferences += ["incremental-csst-flat", "incremental-csst",
                        "csst-flat", "csst"]
        for backend in preferences:
            if backend in candidates:
                return backend
        return self._fallback(candidates, default)


class BanditPolicy(BackendPolicy):
    """Epsilon-greedy bandit over observed per-arm mean runtimes.

    One arm per ``(analysis, feature-bucket, backend)``.  Unseen
    candidates are tried first (in candidate order); after that the
    policy exploits the lowest observed mean runtime, exploring a
    random candidate with probability ``epsilon / sqrt(1 + pulls)`` --
    the decay keeps early sweeps exploratory and warm-started watch
    sessions stable.  Exploration is seeded and therefore
    reproducible.
    """

    name = "bandit"

    def __init__(self, epsilon: float = 0.05, seed: int = 0) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise TuneError(f"epsilon must be in [0, 1], got {epsilon!r}")
        self.epsilon = epsilon
        self.seed = seed
        self._rng = random.Random(seed)
        # arm key "analysis|bucket|backend" -> [pull count, total seconds]
        self._arms: Dict[str, List[float]] = {}

    def _key(self, analysis: str, bucket: str, backend: str) -> str:
        return f"{analysis}|{bucket}|{backend}"

    def choose(self, analysis: str, candidates: Sequence[str],
               features: TraceFeatures,
               default: Optional[str] = None) -> str:
        if not candidates:
            return self._fallback(candidates, default)
        bucket = features.bucket()
        arms = {backend: self._arms.get(self._key(analysis, bucket, backend))
                for backend in candidates}
        for backend, arm in arms.items():
            if arm is None or arm[0] == 0:
                return backend
        pulls = sum(arm[0] for arm in arms.values())
        if self._rng.random() < self.epsilon / (1.0 + pulls) ** 0.5:
            return self._rng.choice(list(candidates))
        return min(arms, key=lambda backend: (
            arms[backend][1] / arms[backend][0]))

    def observe(self, analysis: str, bucket: str, backend: str,
                elapsed_seconds: float) -> None:
        if elapsed_seconds < 0:
            return
        arm = self._arms.setdefault(
            self._key(analysis, bucket, backend), [0, 0.0])
        arm[0] += 1
        arm[1] += float(elapsed_seconds)

    def state_dict(self) -> Dict:
        return {
            "version": STATE_VERSION,
            "policy": self.name,
            "epsilon": self.epsilon,
            "seed": self.seed,
            "arms": {key: [int(arm[0]), float(arm[1])]
                     for key, arm in sorted(self._arms.items())},
        }

    def load_state(self, state: Dict) -> None:
        _check_state(state, self.name)
        self.epsilon = float(state.get("epsilon", self.epsilon))
        self.seed = int(state.get("seed", self.seed))
        self._rng = random.Random(self.seed)
        arms = state.get("arms", {})
        if not isinstance(arms, dict):
            raise TuneError("policy state 'arms' must be an object")
        self._arms = {}
        for key, arm in arms.items():
            try:
                count, total = arm
                self._arms[str(key)] = [int(count), float(total)]
            except (TypeError, ValueError):
                raise TuneError(f"malformed bandit arm {key!r}: {arm!r}")


_POLICY_CLASSES = {
    "static": StaticPolicy,
    "heuristic": HeuristicPolicy,
    "bandit": BanditPolicy,
}


def _check_state(state: Dict, expected_policy: str) -> None:
    if not isinstance(state, dict):
        raise TuneError("policy state must be a JSON object")
    version = state.get("version")
    if version != STATE_VERSION:
        raise TuneError(f"unsupported policy-state version {version!r} "
                        f"(expected {STATE_VERSION})")
    recorded = state.get("policy")
    if recorded != expected_policy:
        raise TuneError(f"policy state was saved by policy {recorded!r}, "
                        f"cannot load it into {expected_policy!r}")


def make_policy(name: Optional[Union[str, BackendPolicy]] = None,
                state_path: Optional[str] = None) -> BackendPolicy:
    """Build (or pass through) a selection policy.

    ``name`` may be a policy name from :data:`POLICY_NAMES`, an existing
    :class:`BackendPolicy` instance (returned unchanged; ``state_path``
    must then be omitted), or ``None`` -- meaning the policy recorded in
    the state file when one is readable, else :data:`DEFAULT_POLICY`.
    When ``state_path`` names an existing file its state is loaded into
    the policy; a name that contradicts the file's recorded policy is a
    :class:`~repro.errors.TuneError`.  A non-existent ``state_path`` is
    fine -- it is where the caller will save state later.
    """
    if isinstance(name, BackendPolicy):
        if state_path is not None:
            raise TuneError("pass either a policy instance or a "
                            "state_path, not both")
        return name
    state = None
    if state_path is not None and os.path.exists(state_path):
        try:
            with open(state_path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, ValueError) as error:
            raise TuneError(f"cannot read policy state {state_path!r}: "
                            f"{error}")
        if not isinstance(state, dict):
            raise TuneError(f"policy state {state_path!r} must hold a "
                            f"JSON object")
    if name is None:
        name = state.get("policy", DEFAULT_POLICY) if state \
            else DEFAULT_POLICY
    try:
        policy = _POLICY_CLASSES[name]()
    except KeyError:
        known = ", ".join(POLICY_NAMES)
        raise TuneError(f"unknown selection policy {name!r}; known: {known}")
    if state is not None:
        policy.load_state(state)
    return policy


def save_policy_state(policy: BackendPolicy, path: str) -> None:
    """Write ``policy.state_dict()`` to ``path`` as pretty-printed JSON."""
    document = policy.state_dict()
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as error:
        raise TuneError(f"cannot write policy state {path!r}: {error}")
