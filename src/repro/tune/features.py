"""Trace-shape feature extraction for backend selection.

Which partial-order backend wins depends on the *shape* of the trace --
thread count, event mix, contention -- not on the analysis alone (the
perf baseline shows ``vc-flat`` ahead on atomic-heavy c11 traces while
``incremental-csst-flat`` wins the lock-structured figure-11 workload).
:func:`extract_features` distils that shape into a small fixed vector,
computed entirely from the int-encoded columns of
:class:`~repro.trace.columns.TraceColumns`.

Because the columns of a lazy ``.stc`` trace are decoded straight from
the file's sections, extraction never materialises a single
:class:`~repro.trace.event.Event`: the feature vector of a ``Trace``,
of a ``LazyTrace``, and of a ``.stc`` round-trip of the same trace is
byte-for-byte identical (property-tested in ``tests/tune``).

:meth:`TraceFeatures.bucket` coarsens the vector into a short string key
so that online policies can aggregate observations across traces of
similar shape without learning one arm per trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.trace.columns import (
    ACQUIRE_CODE,
    KIND_BY_CODE,
    RELEASE_CODE,
)

#: Names of the scalar features, in the order :meth:`TraceFeatures.vector`
#: emits them.  Exposed through ``Session.capabilities()["tuning"]`` so
#: external tooling can interpret recorded feature vectors.
FEATURE_NAMES: Tuple[str, ...] = (
    "events",
    "threads",
    "variables",
    "reads",
    "writes",
    "accesses",
    "atomics",
    "locks",
    "read_write_ratio",
    "lock_density",
    "atomic_fraction",
    "max_contention",
    "mean_contention",
)


@dataclass(frozen=True)
class TraceFeatures:
    """A fixed trace-shape feature vector (see :data:`FEATURE_NAMES`).

    ``kind_hist`` is the per-:class:`~repro.trace.event.EventKind` event
    count as a sorted tuple of ``(kind_name, count)`` pairs -- tuple, not
    dict, so instances hash and compare by value.

    Contention is per-variable: the fraction of all accesses landing on
    the single hottest variable (``max_contention``) and the mean
    accesses per touched variable normalised by total accesses
    (``mean_contention``); both are 0.0 for traces without accesses.
    """

    events: int
    threads: int
    variables: int
    reads: int
    writes: int
    accesses: int
    atomics: int
    locks: int
    kind_hist: Tuple[Tuple[str, int], ...]
    read_write_ratio: float
    lock_density: float
    atomic_fraction: float
    max_contention: float
    mean_contention: float

    def vector(self) -> Tuple[float, ...]:
        """The scalar features as a tuple aligned with :data:`FEATURE_NAMES`."""
        return tuple(float(getattr(self, name)) for name in FEATURE_NAMES)

    def bucket(self) -> str:
        """A coarse shape key for aggregating policy observations.

        Encodes log-scale size (``t`` = log2 threads, ``e`` = log10
        events) and three ternary regime digits: read/write balance
        (``rw``: write-heavy / balanced / read-heavy), lock density
        (``lk``), and hot-variable contention (``c``).  Traces with the
        same bucket are close enough in shape that one backend choice
        serves them all.
        """
        t = int(math.log2(self.threads)) if self.threads > 0 else 0
        e = int(math.log10(self.events)) if self.events > 0 else 0
        rw = _tri(self.read_write_ratio, 0.5, 2.0)
        lk = _tri(self.lock_density, 0.05, 0.2)
        c = _tri(self.max_contention, 0.2, 0.5)
        return f"t{t}e{e}rw{rw}lk{lk}c{c}"


def _tri(value: float, low: float, high: float) -> int:
    """0 below ``low``, 1 in [low, high), 2 at or above ``high``."""
    if value < low:
        return 0
    if value < high:
        return 1
    return 2


def extract_features(trace) -> TraceFeatures:
    """Compute the :class:`TraceFeatures` of ``trace``.

    Works on anything exposing ``columns()`` -- an eager ``Trace``, a
    lazy ``.stc``-backed trace, or the streaming engine's growing
    snapshot -- and reads only the int/byte columns, so no ``Event``
    objects are inflated.
    """
    columns = trace.columns()
    kinds = columns.kinds
    total = len(columns)

    kind_hist = []
    for code, kind in enumerate(KIND_BY_CODE):
        count = kinds.count(code)
        if count:
            kind_hist.append((kind.name, count))
    kind_hist.sort()

    reads = sum(columns.read_flags)
    writes = sum(columns.write_flags)
    accesses = sum(columns.access_flags)
    atomics = sum(columns.atomic_flags)
    locks = kinds.count(ACQUIRE_CODE) + kinds.count(RELEASE_CODE)

    per_variable: Dict[int, int] = {}
    for var_id, flag in zip(columns.var_ids, columns.access_flags):
        if flag and var_id >= 0:
            per_variable[var_id] = per_variable.get(var_id, 0) + 1
    if accesses and per_variable:
        max_contention = max(per_variable.values()) / accesses
        mean_contention = (accesses / len(per_variable)) / accesses
    else:
        max_contention = 0.0
        mean_contention = 0.0

    return TraceFeatures(
        events=total,
        threads=len(columns.thread_positions),
        variables=len(columns.variables),
        reads=reads,
        writes=writes,
        accesses=accesses,
        atomics=atomics,
        locks=locks,
        kind_hist=tuple(kind_hist),
        read_write_ratio=reads / writes if writes else float(reads),
        lock_density=locks / total if total else 0.0,
        atomic_fraction=atomics / total if total else 0.0,
        max_contention=max_contention,
        mean_contention=mean_contention,
    )
