"""Exception hierarchy and exit-code policy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class when they do not care about the precise
failure mode.

This module is also the single source of truth for the process exit codes
of every front end (the CLI, the ``api-smoke`` scripts, CI jobs):

=====================  =====  ==================================================
Constant               Value  Meaning
=====================  =====  ==================================================
:data:`EXIT_OK`        0      The run completed cleanly.
:data:`EXIT_FAILURE`   1      The run completed, but reported failures the
                              caller must look at (sweep job errors, fuzz
                              divergences, perf regressions, a failed final
                              stream flush).
:data:`EXIT_ERROR`     2      The request itself was bad or could not be
                              served: every :class:`ReproError` subclass
                              (including :class:`ConfigError`) and ``OSError``.
:data:`EXIT_INTERRUPT` 130    The run was interrupted (SIGINT convention).
=====================  =====  ==================================================

Front ends map exceptions through :func:`exit_code_for` instead of choosing
codes ad hoc, so the table above is a stable contract for external tooling.
"""

from __future__ import annotations

#: Exit code of a clean run.
EXIT_OK = 0
#: Exit code of a completed run that reported failures (divergences,
#: failed sweep jobs, perf regressions, a failed final stream flush).
EXIT_FAILURE = 1
#: Exit code for invalid requests and environment errors.
EXIT_ERROR = 2
#: Exit code for an interrupted run (128 + SIGINT).
EXIT_INTERRUPT = 130


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class UnsupportedOperationError(ReproError):
    """Raised when a partial-order backend does not support an operation.

    The canonical example is calling ``delete_edge`` on a Vector Clock or
    Segment Tree backend: the paper (Section 1) points out that these
    structures cannot handle decremental updates, and we surface that as an
    explicit error instead of silently corrupting the order.
    """


class InvalidEdgeError(ReproError):
    """Raised when an edge update violates the chain-DAG restrictions.

    Updates are only allowed across nodes in *different* chains (Section
    2.2 of the paper); intra-chain order is implicit program order.
    """


class InvalidNodeError(ReproError):
    """Raised when a node identifier is malformed or out of range."""


class TraceError(ReproError):
    """Raised when a trace is malformed (bad event, unbalanced locks, ...)."""


class TraceFormatError(TraceError):
    """Raised when a binary ``.stc`` trace is malformed: bad magic bytes,
    an unsupported format version, truncated or out-of-bounds sections,
    section lengths that disagree with the event count, or interned ids
    pointing outside the value pool.  Decoding never surfaces a raw
    ``struct.error`` / ``IndexError`` and never returns silently wrong
    data -- every integrity violation becomes this typed error."""


class AnalysisError(ReproError):
    """Raised when a dynamic analysis is mis-configured or fails internally."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness on invalid configuration."""


class GenerationError(ReproError):
    """Raised by the scenario-program generation subsystem (bad distribution
    spec, malformed scenario, corpus/manifest problems)."""


class FuzzError(GenerationError):
    """Raised by the differential fuzzer on invalid configuration."""


class StreamError(ReproError):
    """Raised by the streaming engine (bad source, out-of-order feed, ...)."""


class CheckpointError(StreamError):
    """Raised when a stream checkpoint cannot be saved or restored."""


class FeedCancelledError(StreamError):
    """Raised to producers blocked in :meth:`FeedSource.push`/``emit`` when
    the *consumer* side went away (the consuming iterator was closed or the
    feed was cancelled).  Without this, a producer blocked on backpressure
    against a dead consumer would deadlock forever -- worker shutdown in
    :mod:`repro.serve` relies on the typed unblock."""


class ServeError(ReproError):
    """Raised by the multi-tenant serving layer (:mod:`repro.serve`):
    malformed ingest lines, unknown tenants, supervisor/worker failures,
    quota violations surfaced as errors."""


class ProtocolError(ServeError):
    """Raised when an ingest line violates the serve line protocol
    (bad tenant id, malformed control line, event for an ended tenant)."""


class ConfigError(ReproError):
    """Raised by :mod:`repro.api` when a request config is invalid
    (unknown keys, out-of-range values, conflicting options)."""


class TuneError(ReproError):
    """Raised by :mod:`repro.tune` (unknown selection policy, malformed
    or mismatched policy-state files)."""


class ObservabilityError(ReproError):
    """Raised by :mod:`repro.obs` (conflicting metric registrations,
    malformed snapshot files, unusable perf-trend inputs)."""


def exit_code_for(error: BaseException) -> int:
    """The stable exit code for ``error`` (see the module docstring).

    Any :class:`ReproError` subclass and ``OSError`` map to
    :data:`EXIT_ERROR`; ``KeyboardInterrupt`` maps to
    :data:`EXIT_INTERRUPT`.  Anything else is a genuine bug and is *not*
    mapped -- callers should let it propagate with its traceback.
    """
    if isinstance(error, KeyboardInterrupt):
        return EXIT_INTERRUPT
    if isinstance(error, (ReproError, OSError)):
        return EXIT_ERROR
    raise TypeError(f"no exit-code mapping for {type(error).__name__}")
