"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class when they do not care about the precise
failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class UnsupportedOperationError(ReproError):
    """Raised when a partial-order backend does not support an operation.

    The canonical example is calling ``delete_edge`` on a Vector Clock or
    Segment Tree backend: the paper (Section 1) points out that these
    structures cannot handle decremental updates, and we surface that as an
    explicit error instead of silently corrupting the order.
    """


class InvalidEdgeError(ReproError):
    """Raised when an edge update violates the chain-DAG restrictions.

    Updates are only allowed across nodes in *different* chains (Section
    2.2 of the paper); intra-chain order is implicit program order.
    """


class InvalidNodeError(ReproError):
    """Raised when a node identifier is malformed or out of range."""


class TraceError(ReproError):
    """Raised when a trace is malformed (bad event, unbalanced locks, ...)."""


class AnalysisError(ReproError):
    """Raised when a dynamic analysis is mis-configured or fails internally."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness on invalid configuration."""


class GenerationError(ReproError):
    """Raised by the scenario-program generation subsystem (bad distribution
    spec, malformed scenario, corpus/manifest problems)."""


class FuzzError(GenerationError):
    """Raised by the differential fuzzer on invalid configuration."""


class StreamError(ReproError):
    """Raised by the streaming engine (bad source, out-of-order feed, ...)."""


class CheckpointError(StreamError):
    """Raised when a stream checkpoint cannot be saved or restored."""
