"""repro -- a reproduction of "CSSTs: A Dynamic Data Structure for Partial
Orders in Concurrent Execution Analysis" (ASPLOS 2024).

The top-level package re-exports the most commonly used classes so that the
quickstart reads naturally::

    from repro import IncrementalCSST

    order = IncrementalCSST(num_chains=4)
    order.insert_edge((0, 3), (2, 7))
    assert order.reachable((0, 1), (2, 9))

For whole workflows (analyses, sweeps, watching, fuzzing) use the typed
facade instead of the CLI::

    from repro import AnalyzeConfig, Session

    result = Session().run(AnalyzeConfig(analysis="race-prediction",
                                         trace="trace.std"))
    print(result.to_table())

Sub-packages
------------
``repro.api``
    Library-first facade: request configs, the unified registry, the
    ``Session`` runner, structured results (the CLI is a thin shim over
    this).
``repro.core``
    CSSTs, Sparse Segment Trees and the baseline partial-order backends.
``repro.trace``
    Concurrent-execution trace model, serialization and synthetic workload
    generators.
``repro.analyses``
    The seven dynamic analyses of the paper's evaluation, written against
    the generic partial-order interface.
``repro.bench``
    Benchmark harness used by the ``benchmarks/`` suites to regenerate the
    paper's tables and figures.
``repro.runner``
    Sweep runner: named trace suites fanned out over parallel worker
    processes (``python -m repro sweep``).
``repro.stream``
    Streaming engine: online event ingestion, windowed incremental
    analyses, checkpoint/restore (``python -m repro watch``).
``repro.serve``
    Multi-tenant sharded streaming service: many feeds across worker
    processes with quotas, backpressure, and crash recovery
    (``python -m repro serve``).
"""

from repro._version import __version__
from repro.api import (
    AnalyzeConfig,
    BenchConfig,
    CompareConfig,
    FuzzConfig,
    GenConfig,
    GenerateConfig,
    Registry,
    ServeConfig,
    Session,
    SweepConfig,
    WatchConfig,
)
from repro.core import (
    CSST,
    GraphOrder,
    IncrementalCSST,
    PartialOrder,
    SegmentTree,
    SegmentTreeOrder,
    SparseSegmentTree,
    VectorClockOrder,
    make_partial_order,
)
from repro.errors import (
    AnalysisError,
    BenchmarkError,
    CheckpointError,
    ConfigError,
    InvalidEdgeError,
    InvalidNodeError,
    ReproError,
    StreamError,
    TraceError,
    UnsupportedOperationError,
)

__all__ = [
    "AnalysisError",
    "AnalyzeConfig",
    "BenchConfig",
    "BenchmarkError",
    "CSST",
    "CheckpointError",
    "CompareConfig",
    "ConfigError",
    "FuzzConfig",
    "GenConfig",
    "GenerateConfig",
    "GraphOrder",
    "IncrementalCSST",
    "InvalidEdgeError",
    "InvalidNodeError",
    "PartialOrder",
    "Registry",
    "ReproError",
    "SegmentTree",
    "SegmentTreeOrder",
    "ServeConfig",
    "Session",
    "SparseSegmentTree",
    "StreamError",
    "SweepConfig",
    "TraceError",
    "UnsupportedOperationError",
    "VectorClockOrder",
    "WatchConfig",
    "__version__",
    "make_partial_order",
]
