"""The service runner: wire front door, supervisor, and results together.

:func:`run_serve` is the one entry point both the CLI handler and
:meth:`repro.api.Session.serve` call.  It deliberately takes plain
parameters and returns a plain :class:`ServeOutcome` -- the ``repro.api``
facade layers its config/result types on top (the dependency points
``api -> serve``, never back).

Two modes:

* **replay** (``sources`` given): replay the sources through the
  supervisor round-robin, drain, stop.  Fully deterministic; this is
  what the parity tests and the CI smoke job run.
* **socket** (``host``/``port`` given): serve the ingest protocol until
  the process is interrupted (or ``stop_after_seconds`` elapses, for
  tests), ending still-active tenants at shutdown.

``workers=0`` runs the *inline* degenerate case: one
:class:`~repro.serve.shard.TenantShard` in-process, no child processes,
no journals -- same routing, same summaries.  Multi-source ``repro
watch`` is exactly this path, which is how the single-source and served
code stay one implementation.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError
from repro.serve.frontdoor import replay_sources, serve_socket
from repro.serve.shard import ShardOptions, TenantShard
from repro.serve.supervisor import Supervisor, TenantFinding


@dataclass
class ServeOutcome:
    """Plain-data result of one service run."""

    tenants: List[str]
    findings: List[TenantFinding]
    summaries: Dict[str, Dict[str, Any]]
    events: int
    workers: int
    respawns: int
    rejected: int
    errors: List[Tuple[str, str]] = field(default_factory=list)

    def findings_for(self, tenant: str) -> List[TenantFinding]:
        return [item for item in self.findings if item.tenant == tenant]


class _InlineService:
    """The ``workers=0`` path: one shard, no processes, no journals.

    Exposes the supervisor's ingest surface so the front door cannot
    tell the difference.
    """

    def __init__(self, shard_options: ShardOptions,
                 quota_events: Optional[int],
                 on_finding: Optional[Callable[[TenantFinding], None]],
                 on_notice: Optional[Callable[[str, str], None]]) -> None:
        self.findings: List[TenantFinding] = []
        self.summaries: Dict[str, Dict[str, Any]] = {}
        self.quota_events = quota_events
        self.rejected = 0
        self.respawns = 0
        self.errors: List[Tuple[str, str]] = []
        self._on_finding = on_finding
        self._on_notice = on_notice
        self._seq: Dict[str, int] = {}
        self._ended: Dict[str, bool] = {}

        def emit(tenant: str, item: Any) -> None:
            finding = TenantFinding(tenant=tenant, analysis=item.analysis,
                                    position=item.position,
                                    finding=str(item.finding))
            self.findings.append(finding)
            if on_finding is not None:
                on_finding(finding)

        self._shard = TenantShard(shard_options, on_finding=emit)

    def ingest_event(self, tenant: str, std_line: str) -> int:
        from repro.errors import ProtocolError

        if self._ended.get(tenant):
            raise ProtocolError(f"tenant {tenant!r} already ended its feed")
        seq = self._seq.get(tenant, 0)
        if self.quota_events is not None and seq >= self.quota_events:
            self.rejected += 1
            raise ProtocolError(
                f"tenant {tenant!r} exceeded its event quota "
                f"({self.quota_events})")
        seq += 1
        self._seq[tenant] = seq
        self._shard.feed_line(tenant, seq, std_line)
        return seq

    def end_tenant(self, tenant: str) -> None:
        if self._ended.get(tenant):
            return
        self._ended[tenant] = True
        self.summaries[tenant] = self._shard.end_tenant(tenant)
        if self._on_notice is not None:
            doc = self.summaries[tenant]
            self._on_notice("info",
                            f"tenant {tenant} done: {doc['events']} "
                            f"events, {doc['emitted']} findings")

    def end_all(self) -> None:
        for tenant in sorted(self._seq):
            self.end_tenant(tenant)

    def drain(self, timeout: float = 0.0) -> None:  # synchronous: no-op
        pass

    def stop(self, timeout: float = 0.0) -> None:
        pass


def _build(workers: int, shard_options: ShardOptions,
           queue_size: int, quota_events: Optional[int],
           on_finding, on_notice, crash_worker: Optional[str]):
    if workers == 0:
        if crash_worker is not None:
            raise ServeError(
                "crash_worker requires worker processes (workers >= 1)")
        return _InlineService(shard_options, quota_events, on_finding,
                              on_notice)
    supervisor = Supervisor(shard_options, workers=workers,
                            queue_size=queue_size,
                            quota_events=quota_events,
                            on_finding=on_finding, on_notice=on_notice,
                            crash_worker=crash_worker)
    supervisor.start()
    return supervisor


def run_serve(analyses: Sequence[str],
              *,
              sources: Sequence[str] = (),
              host: Optional[str] = None,
              port: Optional[int] = None,
              workers: int = 2,
              backend: Optional[str] = "auto",
              window: Optional[str] = None,
              flush_every: Optional[int] = None,
              checkpoint_dir: Optional[str] = None,
              checkpoint_every: Optional[int] = None,
              policy: Optional[str] = None,
              policy_state: Optional[str] = None,
              queue_size: int = 256,
              quota_events: Optional[int] = None,
              drain_timeout: float = 60.0,
              crash_worker: Optional[str] = None,
              stop_after_seconds: Optional[float] = None,
              on_finding: Optional[Callable[[TenantFinding], None]] = None,
              on_notice: Optional[Callable[[str, str], None]] = None,
              on_started: Optional[Callable[[Any], None]] = None,
              ) -> ServeOutcome:
    """Run the service once (see module docstring for the two modes).

    ``on_started`` fires after workers are up, with the supervisor (or
    inline service) as argument -- tests use it to grab worker pids and
    schedule kills; the socket mode CLI uses it to print the bound port.
    """
    if bool(sources) == (host is not None or port is not None):
        raise ServeError(
            "serve needs exactly one of: replay sources, or a socket "
            "host/port to listen on")
    if workers < 0:
        raise ServeError(f"workers must be >= 0, got {workers}")
    shard_options = ShardOptions(
        analyses=tuple(analyses),
        backend=backend,
        window=window,
        flush_every=flush_every,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        policy=policy,
        policy_state=policy_state,
    )
    service = _build(workers, shard_options, queue_size, quota_events,
                     on_finding, on_notice, crash_worker)
    try:
        if on_started is not None:
            on_started(service)
        if sources:
            counts = replay_sources(service, sources)
            service.drain(timeout=drain_timeout)
            events = sum(counts.values())
        else:
            events = _run_socket(service, host or "127.0.0.1",
                                 port if port is not None else 0,
                                 stop_after_seconds, drain_timeout,
                                 on_notice)
    finally:
        service.stop()
    summaries = dict(service.summaries)
    return ServeOutcome(
        tenants=sorted(summaries),
        findings=list(service.findings),
        summaries=summaries,
        events=events,
        workers=workers,
        respawns=service.respawns,
        rejected=service.rejected,
        errors=list(service.errors),
    )


def _run_socket(service, host: str, port: int,
                stop_after_seconds: Optional[float],
                drain_timeout: float,
                on_notice: Optional[Callable[[str, str], None]]) -> int:
    """Socket mode body: listen, serve until interrupted or timed out,
    end active tenants, drain."""

    async def body() -> None:
        server = await serve_socket(service, host, port)
        bound = server.sockets[0].getsockname()
        if on_notice is not None:
            on_notice("info", f"listening on {bound[0]}:{bound[1]}")
        try:
            if stop_after_seconds is not None:
                async with server:
                    await server.start_serving()
                    await asyncio.sleep(stop_after_seconds)
            else:
                async with server:
                    await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - interrupt path
            pass

    try:
        asyncio.run(body())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        if on_notice is not None:
            on_notice("info", "interrupted; draining tenants")
    service.end_all()
    service.drain(timeout=drain_timeout)
    events = 0
    for doc in service.summaries.values():
        events += int(doc.get("events", 0))
    return events
