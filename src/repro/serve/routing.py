"""Tenant identifiers and consistent-hash routing.

Every tenant (one live event feed, one session id) is pinned to exactly
one shard for its whole lifetime: a :class:`~repro.stream.StreamEngine`
holds per-thread index counters and dedup state that cannot migrate
mid-stream.  The pin must also be *stable across processes and runs* --
the supervisor, each worker, and a respawned worker after a crash all
recompute it independently -- so the ring hashes with SHA-1, never
Python's randomized ``hash()``.

A consistent-hash ring with virtual nodes (rather than ``hash % N``)
keeps the door open for resizing: adding a shard moves only ``~1/N`` of
the tenants, which matters once checkpoints make tenant state portable.
"""

from __future__ import annotations

import bisect
import hashlib
import re
from typing import List, Tuple

from repro.errors import ProtocolError

#: Tenant ids travel on the wire as the first ``|``-separated field of an
#: ingest line and become checkpoint file names, so the alphabet excludes
#: the protocol separator, whitespace, and path separators outright.
TENANT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:-]{0,63}$")

#: Virtual nodes per shard.  64 keeps the assignment spread within a few
#: percent of uniform for the tenant counts the service targets while the
#: ring stays tiny (N*64 entries, built once).
DEFAULT_VNODES = 64


def validate_tenant(tenant: str) -> str:
    """Return ``tenant`` if it is a legal tenant id, else raise
    :class:`~repro.errors.ProtocolError`."""
    if not isinstance(tenant, str) or not TENANT_PATTERN.match(tenant):
        raise ProtocolError(
            f"invalid tenant id {tenant!r}: expected 1-64 characters of "
            f"[A-Za-z0-9._:-] starting with an alphanumeric")
    return tenant


def _digest(value: str) -> int:
    return int.from_bytes(hashlib.sha1(value.encode("utf-8")).digest()[:8],
                          "big")


class HashRing:
    """Consistent-hash ring mapping tenant ids to shard indexes.

    Deterministic: two rings built with the same ``(shards, vnodes)``
    route every tenant identically, in any process, forever.
    """

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ProtocolError(f"ring needs >= 1 shard, got {shards}")
        if vnodes < 1:
            raise ProtocolError(f"ring needs >= 1 vnode, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((_digest(f"shard-{shard}:vnode-{vnode}"),
                               shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def route(self, tenant: str) -> int:
        """The shard index owning ``tenant`` (validates the id)."""
        validate_tenant(tenant)
        position = bisect.bisect(self._hashes, _digest(tenant))
        if position == len(self._hashes):  # wrap around the ring
            position = 0
        return self._owners[position]

    def assignment(self, tenants) -> dict:
        """``{tenant: shard}`` for a whole collection at once."""
        return {tenant: self.route(tenant) for tenant in tenants}
