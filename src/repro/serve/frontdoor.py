"""The front door: socket ingest and corpus replay.

Two ways events reach the :class:`~repro.serve.supervisor.Supervisor`:

* :func:`serve_socket` -- an asyncio TCP server speaking the line
  protocol of :mod:`repro.serve.protocol`.  Each connection gets its own
  reader coroutine; blocking ingest (bounded worker queues) runs in the
  default executor, so one backpressured tenant stalls only its own
  connection while the loop keeps serving the rest.  Pushback reaches
  clients the honest way: the reader simply stops reading, the socket
  buffer fills, and the sender's TCP window closes.

* :func:`replay_sources` -- deterministic multi-tenant replay of trace
  files / corpus members / generator specs, one tenant per source,
  round-robin interleaved so every worker sees genuinely concurrent
  tenants.  This is the testing mode (``repro serve --once``) and also
  the engine behind multi-``--source`` ``repro watch``.

Per-event protocol errors (quota exceeded, malformed line) are reported
to the client as ``#error|<tenant>|<message>`` response lines and the
connection stays up -- one misbehaving tenant must not sever a
connection multiplexing many.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ProtocolError, ServeError
from repro.serve.protocol import BYE_LINE, format_end, format_event_line, \
    parse_line
from repro.serve.routing import TENANT_PATTERN, validate_tenant
from repro.serve.supervisor import Supervisor
from repro.trace.formats import format_event

#: Server -> client per-event rejection line.
ERROR_PREFIX = "#error|"


def tenant_for_source(name: str, taken: Iterable[str] = ()) -> str:
    """Derive a legal, unique tenant id from a source name.

    Source names (file stems, corpus trace ids, generator specs) may
    contain characters outside the tenant alphabet; they are mapped to
    ``-`` and the result is de-duplicated against ``taken`` with a
    numeric suffix.
    """
    cleaned = "".join(char if TENANT_PATTERN.match(f"a{char}") else "-"
                      for char in str(name))[:64]
    cleaned = cleaned.strip("-") or "tenant"
    if not cleaned[0].isalnum():
        cleaned = "t" + cleaned[:63]
    taken = set(taken)
    candidate, attempt = cleaned, 1
    while candidate in taken:
        attempt += 1
        suffix = f"-{attempt}"
        candidate = cleaned[:64 - len(suffix)] + suffix
    return validate_tenant(candidate)


def open_replay(specs: Iterable[str]
                ) -> List[Tuple[str, Iterator[str]]]:
    """Resolve source specs into ``(tenant, std-line-iterator)`` pairs.

    Every source kind ``repro watch`` accepts works here too (STD text,
    ``.stc`` binary, corpus ``manifest.json#TRACE_ID``, generator specs):
    the source is opened with :func:`~repro.stream.open_source` and its
    events re-serialized to STD lines, which keeps replay agnostic of
    the original container format.
    """
    from repro.stream import open_source

    feeds: List[Tuple[str, Iterator[str]]] = []
    taken: List[str] = []
    for spec in specs:
        source = open_source(spec)
        tenant = tenant_for_source(getattr(source, "name", spec), taken)
        taken.append(tenant)
        feeds.append((tenant,
                      (format_event(event) for event in source.events())))
    return feeds


def replay_sources(supervisor: Supervisor, specs: Iterable[str],
                   on_sent: Optional[Callable[[str, int], None]] = None
                   ) -> Dict[str, int]:
    """Replay ``specs`` through ``supervisor``, one tenant per source.

    Sources are interleaved round-robin (one event each per cycle) so the
    run is deterministic yet genuinely multi-tenant at every instant.
    Each tenant's feed is ended as its source drains.  Returns the event
    count per tenant.  ``on_sent(tenant, seq)`` fires after each accepted
    event (the CI smoke test uses it to schedule a mid-replay kill).
    """
    feeds = open_replay(specs)
    counts: Dict[str, int] = {tenant: 0 for tenant, _ in feeds}
    if len(counts) != len(feeds):
        raise ServeError("duplicate tenant ids in replay set")
    live = list(feeds)
    while live:
        still_live = []
        for tenant, lines in live:
            line = next(lines, None)
            if line is None:
                supervisor.end_tenant(tenant)
                continue
            seq = supervisor.ingest_event(tenant, line)
            counts[tenant] = seq
            if on_sent is not None:
                on_sent(tenant, seq)
            still_live.append((tenant, lines))
        live = still_live
    return counts


# --------------------------------------------------------------------------- #
# Socket server
# --------------------------------------------------------------------------- #
async def handle_connection(supervisor: Supervisor,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one ingest connection until EOF or ``#bye``."""
    loop = asyncio.get_running_loop()
    try:
        while True:
            raw = await reader.readline()
            if not raw:
                break
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError:
                writer.write(f"{ERROR_PREFIX}?|line is not UTF-8\n"
                             .encode("utf-8"))
                await writer.drain()
                continue
            tenant = None
            try:
                kind, tenant, payload = parse_line(line)
                if kind == "blank":
                    continue
                if kind == "bye":
                    break
                if kind == "end":
                    await loop.run_in_executor(
                        None, supervisor.end_tenant, tenant)
                else:  # event
                    await loop.run_in_executor(
                        None, supervisor.ingest_event, tenant, payload)
            except ProtocolError as error:
                label = tenant if tenant is not None else "?"
                writer.write(f"{ERROR_PREFIX}{label}|{error}\n"
                             .encode("utf-8"))
                await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass


async def serve_socket(supervisor: Supervisor, host: str, port: int
                       ) -> asyncio.AbstractServer:
    """Start the ingest server (caller owns its lifetime).  The bound
    port is available as ``server.sockets[0].getsockname()[1]`` -- pass
    ``port=0`` to let the kernel pick one."""

    async def handler(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        await handle_connection(supervisor, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


# --------------------------------------------------------------------------- #
# Client helper (tests / CI replay over a real socket)
# --------------------------------------------------------------------------- #
def send_lines(host: str, port: int, lines: Iterable[str],
               timeout: float = 30.0) -> List[str]:
    """Blocking client: send protocol lines, return ``#error`` responses.

    Sends ``#bye`` at the end if the caller did not.  Reads interleaved
    error responses without blocking on them (the server only writes on
    rejection).
    """
    import socket

    responses: List[str] = []
    with socket.create_connection((host, port), timeout=timeout) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        said_bye = False
        for line in lines:
            stream.write(line.rstrip("\n") + "\n")
            if line.strip() == BYE_LINE:
                said_bye = True
        if not said_bye:
            stream.write(BYE_LINE + "\n")
        stream.flush()
        sock.shutdown(socket.SHUT_WR)
        for response in stream:
            if response.strip():
                responses.append(response.rstrip("\n"))
    return responses


def replay_lines(specs: Iterable[str]) -> Iterator[str]:
    """The full protocol line sequence replaying ``specs`` (round-robin
    interleaved, ``#end`` per drained tenant, final ``#bye``) -- feed it
    to :func:`send_lines` to drive a live server the way
    :func:`replay_sources` drives an in-process supervisor."""
    feeds = open_replay(specs)
    live = list(feeds)
    while live:
        still_live = []
        for tenant, lines in live:
            line = next(lines, None)
            if line is None:
                yield format_end(tenant)
                continue
            yield format_event_line(tenant, line)
            still_live.append((tenant, lines))
        live = still_live
    yield BYE_LINE
