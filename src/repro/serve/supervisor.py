"""The supervisor: worker lifecycle, journals, quotas, crash recovery.

One :class:`Supervisor` owns N worker processes (fork-spawned, each
running :func:`repro.serve.worker.worker_main`), a consistent-hash ring
pinning every tenant to one worker, and a collector thread draining the
shared results queue into the merged findings feed.

**Delivery and recovery model.**  Every accepted event gets a per-tenant
sequence number and is appended to that tenant's *journal* before it is
queued to the worker.  Workers acknowledge each checkpoint they write
with the engine cursor it covers; the supervisor trims the journal up to
that cursor.  The journal therefore always holds exactly the events that
are not yet durably checkpointed -- which is precisely what a respawned
worker needs.  When a worker dies (detected by liveness checks on the
ingest path and during drain), the supervisor abandons its command queue
(anything buffered there is a subset of the journals), spawns a fresh
process on a fresh queue, and replays the journal of every tenant routed
to that worker.  The worker's shard restores each tenant from its last
checkpoint and skips replayed sequence numbers it already consumed, so
replay is idempotent; findings re-emitted for post-checkpoint events are
deduplicated here by ``(tenant, analysis, position, text)`` -- positions
are deterministic cursor counts, so a re-discovered finding collides
exactly with its first emission.

**Backpressure.**  Worker command queues are bounded; when one is full
the ingest call blocks (counting ``serve_backpressure_waits_total``),
which in turn stalls the socket reader coroutine -- pushback reaches the
client's TCP window instead of growing a buffer.

Aggregation is asynchronous end to end -- per-worker findings merge
through the collector as they arrive and telemetry snapshots merge at
shutdown, with no global barrier while streams are live (the
proxy-mediated reduction idiom, cf. Tascade)."""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from collections import deque

from repro.errors import ProtocolError, ServeError
from repro.obs import metrics as obs_metrics
from repro.serve.routing import HashRing, validate_tenant
from repro.serve.shard import ShardOptions
from repro.serve.worker import worker_main

#: How many times one worker slot may be respawned before the service
#: gives up (a crash *loop* is a bug, not an outage to ride out).
RESPAWN_LIMIT = 3

#: Seconds between liveness polls while draining.
DRAIN_POLL_SECONDS = 0.02


@dataclass(frozen=True)
class TenantFinding:
    """One finding of the merged feed, attributed to its tenant."""

    tenant: str
    analysis: str
    position: int
    finding: str  #: ``str(finding)`` -- findings cross process as text

    def watch_line(self) -> str:
        """The exact line single-source ``repro watch`` prints for this
        finding (the per-tenant parity form)."""
        return f"[{self.position:>6d}] {self.analysis}: {self.finding}"

    def __str__(self) -> str:
        return f"{self.tenant} {self.watch_line()}"


@dataclass
class _Worker:
    """One worker slot (the process may be respawned in place)."""

    index: int
    process: Any = None
    commands: Any = None
    respawns: int = 0
    crash_after: Optional[int] = None  #: fault injection, first spawn only


class Supervisor:
    """Shard tenants across worker processes (see module docstring).

    ``on_finding`` receives each merged-feed :class:`TenantFinding` as it
    arrives (deduplicated); ``on_notice`` receives ``(kind, message)``
    progress/diagnostic lines like the watch hook does.
    """

    def __init__(self, shard_options: ShardOptions, workers: int = 2,
                 *, queue_size: int = 256,
                 quota_events: Optional[int] = None,
                 on_finding: Optional[Callable[[TenantFinding], None]] = None,
                 on_notice: Optional[Callable[[str, str], None]] = None,
                 crash_worker: Optional[str] = None) -> None:
        if workers < 1:
            raise ServeError(f"supervisor needs >= 1 worker, got {workers}")
        if queue_size < 1:
            raise ServeError(f"queue_size must be >= 1, got {queue_size}")
        if quota_events is not None and quota_events < 1:
            raise ServeError(
                f"quota_events must be >= 1, got {quota_events}")
        self.shard_options = shard_options
        self.worker_count = workers
        self.queue_size = queue_size
        self.quota_events = quota_events
        self.on_finding = on_finding
        self.on_notice = on_notice
        self._crash_spec = self._parse_crash(crash_worker, workers)
        self._ring = HashRing(workers)
        self._context = multiprocessing.get_context("fork")
        self._lock = threading.RLock()
        self._workers: List[_Worker] = []
        self._results = None
        self._collector: Optional[threading.Thread] = None
        self._closing = False
        self._started = False
        # Tenant state, all guarded by _lock.
        self._state: Dict[str, str] = {}  # active | ending | done
        self._seq: Dict[str, int] = {}
        self._journal: Dict[str, Deque[Tuple[int, str]]] = {}
        self._summaries: Dict[str, Dict[str, Any]] = {}
        self._errors: List[Tuple[str, str]] = []
        self._seen_findings: Set[Tuple[str, str, int, str]] = set()
        self.findings: List[TenantFinding] = []
        self.respawns = 0
        self.rejected = 0
        self._snapshots: Dict[int, Dict[str, Any]] = {}
        self._stopped: Set[int] = set()
        # Telemetry binds at construction like the engine.
        self._registry = obs_metrics.ACTIVE

    @staticmethod
    def _parse_crash(spec: Optional[str], workers: int
                     ) -> Optional[Tuple[int, int]]:
        """Parse ``INDEX@EVENTS`` fault-injection spec."""
        if spec is None:
            return None
        index_text, separator, events_text = str(spec).partition("@")
        try:
            index, events = int(index_text), int(events_text)
            if not separator or index < 0 or events < 1:
                raise ValueError
        except ValueError:
            raise ServeError(
                f"malformed crash_worker spec {spec!r}: expected "
                f"INDEX@EVENTS (e.g. 0@40)") from None
        if index >= workers:
            raise ServeError(
                f"crash_worker index {index} out of range "
                f"(workers: {workers})")
        return (index, events)

    def _notice(self, kind: str, message: str) -> None:
        if self.on_notice is not None:
            self.on_notice(kind, message)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._started:
            raise ServeError("supervisor already started")
        self._started = True
        self._results = self._context.Queue()
        for index in range(self.worker_count):
            crash_after = None
            if self._crash_spec is not None and index == self._crash_spec[0]:
                crash_after = self._crash_spec[1]
            worker = _Worker(index=index, crash_after=crash_after)
            self._workers.append(worker)
            self._spawn(worker, crash_after=crash_after)
        # The collector MUST run before any ingest: a full results queue
        # with nobody draining it would deadlock workers mid-put.
        self._collector = threading.Thread(target=self._collect,
                                           name="serve-collector",
                                           daemon=True)
        self._collector.start()

    def _spawn(self, worker: _Worker,
               crash_after: Optional[int] = None) -> None:
        worker.commands = self._context.Queue(maxsize=self.queue_size)
        worker.process = self._context.Process(
            target=worker_main,
            args=(worker.index, worker.commands, self._results,
                  self.shard_options, self._registry is not None,
                  crash_after),
            daemon=True,
            name=f"repro-serve-worker-{worker.index}",
        )
        worker.process.start()

    @property
    def worker_pids(self) -> List[int]:
        """Live worker PIDs by slot (for pid files and kill tests)."""
        return [worker.process.pid for worker in self._workers]

    def kill_worker(self, index: int) -> int:
        """SIGKILL one worker (test/CI hook).  Returns the killed pid.
        Recovery happens through the normal liveness path."""
        worker = self._workers[index]
        pid = worker.process.pid
        os.kill(pid, signal.SIGKILL)
        worker.process.join(timeout=5.0)
        return pid

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def ingest_event(self, tenant: str, std_line: str) -> int:
        """Accept one STD event line for ``tenant``; returns its sequence
        number.  Raises :class:`~repro.errors.ProtocolError` for ended
        tenants and exceeded quotas (the event is NOT accepted)."""
        validate_tenant(tenant)
        with self._lock:
            state = self._state.get(tenant)
            if state in ("ending", "done"):
                raise ProtocolError(
                    f"tenant {tenant!r} already ended its feed")
            if state is None:
                self._state[tenant] = "active"
                self._seq[tenant] = 0
                self._journal[tenant] = deque()
                if self._registry is not None:
                    self._registry.counter("serve_tenants_total").inc()
                self._notice("info",
                             f"tenant {tenant} -> worker "
                             f"{self._ring.route(tenant)}")
            if self.quota_events is not None \
                    and self._seq[tenant] >= self.quota_events:
                self.rejected += 1
                if self._registry is not None:
                    self._registry.counter("serve_quota_rejected_total",
                                           tenant=tenant).inc()
                raise ProtocolError(
                    f"tenant {tenant!r} exceeded its event quota "
                    f"({self.quota_events})")
            self._seq[tenant] += 1
            seq = self._seq[tenant]
            self._journal[tenant].append((seq, std_line))
        self._put(self._ring.route(tenant),
                  ("event", tenant, seq, std_line, time.time()))
        return seq

    def end_tenant(self, tenant: str) -> None:
        """Mark ``tenant``'s feed complete; its summary arrives through
        the collector once the worker finishes the final flush."""
        validate_tenant(tenant)
        with self._lock:
            state = self._state.get(tenant)
            if state == "done" or state == "ending":
                return
            if state is None:
                # An end before any event: materialize the tenant so it
                # still produces a (trivial) summary.
                self._state[tenant] = "active"
                self._seq[tenant] = 0
                self._journal[tenant] = deque()
            self._state[tenant] = "ending"
        self._put(self._ring.route(tenant), ("end", tenant))

    def end_all(self) -> None:
        with self._lock:
            active = [tenant for tenant, state in self._state.items()
                      if state == "active"]
        for tenant in sorted(active):
            self.end_tenant(tenant)

    def _put(self, index: int, message: Tuple) -> None:
        """Queue one command, respawning a dead worker and riding out
        backpressure; never drops an accepted message."""
        worker = self._workers[index]
        while True:
            if not worker.process.is_alive():
                self._respawn(worker)
            try:
                worker.commands.put(message, timeout=0.2)
                return
            except queue_module.Full:
                if self._registry is not None:
                    self._registry.counter("serve_backpressure_waits_total",
                                           worker=index).inc()

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def _respawn(self, worker: _Worker) -> None:
        with self._lock:
            if not self._started or self._closing:
                raise ServeError(
                    f"worker {worker.index} died during shutdown")
            if worker.process.is_alive():  # raced with another caller
                return
            worker.respawns += 1
            self.respawns += 1
            if worker.respawns > RESPAWN_LIMIT:
                raise ServeError(
                    f"worker {worker.index} crashed {worker.respawns} "
                    f"times; giving up (respawn limit {RESPAWN_LIMIT})")
            exit_code = worker.process.exitcode
            self._notice("warning",
                         f"worker {worker.index} died (exit {exit_code}); "
                         f"respawning and replaying journal")
            if self._registry is not None:
                self._registry.counter("serve_worker_respawn_total",
                                       worker=worker.index).inc()
            # The old queue's buffered commands are a subset of the
            # journals -- abandon it wholesale and replay from the
            # journals instead (fault injection never survives a respawn).
            self._spawn(worker, crash_after=None)
            replay: List[Tuple[str, str, List[Tuple[int, str]]]] = []
            for tenant in sorted(self._state):
                if self._state[tenant] == "done":
                    continue
                if self._ring.route(tenant) != worker.index:
                    continue
                replay.append((tenant, self._state[tenant],
                               list(self._journal[tenant])))
        for tenant, state, entries in replay:
            for seq, line in entries:
                self._replay_put(worker, ("event", tenant, seq, line,
                                          time.time()))
            if state == "ending":
                self._replay_put(worker, ("end", tenant))

    def _replay_put(self, worker: _Worker, message: Tuple) -> None:
        """A bounded-queue put targeted at the respawned worker (no
        re-entrant respawn: a worker dying *again* mid-replay surfaces at
        the next liveness check with the journal still intact)."""
        while True:
            if not worker.process.is_alive():
                raise ServeError(
                    f"worker {worker.index} died again during journal "
                    f"replay")
            try:
                worker.commands.put(message, timeout=0.2)
                return
            except queue_module.Full:
                continue

    def check_workers(self) -> None:
        """Liveness sweep: respawn any dead worker now (called from the
        drain loop so a crash with no in-flight ingest still recovers)."""
        for worker in self._workers:
            if not worker.process.is_alive():
                self._respawn(worker)

    # ------------------------------------------------------------------ #
    # Collector
    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        while True:
            try:
                message = self._results.get(timeout=0.1)
            except queue_module.Empty:
                if self._closing and not any(
                        worker.process.is_alive()
                        for worker in self._workers):
                    return
                continue
            kind = message[0]
            if kind == "finding":
                _, _index, tenant, doc = message
                key = (tenant, doc["analysis"], doc["position"],
                       doc["finding"])
                with self._lock:
                    if key in self._seen_findings:
                        continue  # recovery re-emission
                    self._seen_findings.add(key)
                    item = TenantFinding(tenant=tenant,
                                         analysis=doc["analysis"],
                                         position=doc["position"],
                                         finding=doc["finding"])
                    self.findings.append(item)
                if self.on_finding is not None:
                    self.on_finding(item)
            elif kind == "ack":
                _, _index, tenant, cursor = message
                with self._lock:
                    journal = self._journal.get(tenant)
                    while journal and journal[0][0] <= cursor:
                        journal.popleft()
            elif kind == "summary":
                _, _index, tenant, doc = message
                with self._lock:
                    self._summaries[tenant] = doc
                    self._state[tenant] = "done"
                    self._journal.pop(tenant, None)
                self._notice("info",
                             f"tenant {tenant} done: {doc['events']} "
                             f"events, {doc['emitted']} findings")
            elif kind == "error":
                _, _index, tenant, text = message
                with self._lock:
                    self._errors.append((tenant, text))
                self._notice("warning", f"tenant {tenant}: {text}")
            elif kind == "telemetry":
                _, index, snapshot = message
                self._snapshots[index] = snapshot
            elif kind == "stopped":
                self._stopped.add(message[1])

    # ------------------------------------------------------------------ #
    # Drain / shutdown
    # ------------------------------------------------------------------ #
    def drain(self, timeout: float = 60.0) -> None:
        """Block until every ended tenant has reported its summary,
        recovering crashed workers along the way."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                pending = [tenant for tenant, state in self._state.items()
                           if state == "ending"]
            if not pending:
                return
            if time.monotonic() > deadline:
                raise ServeError(
                    f"drain timed out after {timeout}s; tenants still "
                    f"pending: {sorted(pending)}")
            self.check_workers()
            time.sleep(DRAIN_POLL_SECONDS)

    def stop(self, timeout: float = 10.0) -> None:
        """Shut every worker down, collect telemetry, merge it into the
        active registry (one timeline lane per worker)."""
        if not self._started or self._closing:
            return
        self._closing = True
        for worker in self._workers:
            if worker.process.is_alive():
                try:
                    worker.commands.put(("stop",), timeout=1.0)
                except queue_module.Full:  # pragma: no cover - stuck worker
                    pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.process.join(timeout=max(0.1,
                                            deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        if self._registry is not None:
            from repro.obs.context import merge_snapshot

            parent = self._registry.current_span()
            for index in sorted(self._snapshots):
                merge_snapshot(self._registry, self._snapshots[index],
                               parent_span=parent)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    @property
    def summaries(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return dict(self._summaries)

    @property
    def errors(self) -> List[Tuple[str, str]]:
        with self._lock:
            return list(self._errors)

    def findings_for(self, tenant: str) -> List[TenantFinding]:
        """The merged feed filtered to one tenant, in emission order."""
        with self._lock:
            return [item for item in self.findings if item.tenant == tenant]
