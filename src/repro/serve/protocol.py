"""The serve ingest line protocol.

One UTF-8 text line per message, newline-terminated.  Three message
kinds:

``<tenant>|<std-event-line>``
    One event for ``tenant``.  The payload after the first ``|`` is a
    standard STD trace line (see :mod:`repro.trace.formats`), so any
    existing trace file can be replayed by prefixing each line with a
    tenant id.  Events of one tenant must arrive in observed order with
    per-thread indexes assigned consecutively from 0 -- exactly the
    invariant every other source in the system enforces.

``#end|<tenant>``
    ``tenant``'s feed is complete: the service performs the final flush
    and reports the tenant's summary.

``#bye``
    The client is done; the service may drain and shut the connection
    (replay mode sends it after the last tenant's ``#end``).

Control lines reuse the STD comment prefix ``#`` deliberately: a serve
ingest line with its tenant prefix stripped is always a valid STD line,
and an STD comment can never be mistaken for an event.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ProtocolError
from repro.serve.routing import validate_tenant

#: Client-side farewell (no payload).
BYE_LINE = "#bye"

#: Prefix of the tenant-feed-complete control line.
END_PREFIX = "#end|"


def format_event_line(tenant: str, std_line: str) -> str:
    """Wire line carrying one STD event line for ``tenant``."""
    validate_tenant(tenant)
    return f"{tenant}|{std_line}"


def format_end(tenant: str) -> str:
    """Wire line marking ``tenant``'s feed complete."""
    validate_tenant(tenant)
    return f"{END_PREFIX}{tenant}"


def parse_line(line: str) -> Tuple[str, Optional[str], Optional[str]]:
    """Parse one wire line into ``(kind, tenant, payload)``.

    ``kind`` is ``"event"`` (tenant + STD payload), ``"end"`` (tenant,
    no payload), ``"bye"``, or ``"blank"`` (empty line / bare comment,
    to be ignored).  Malformed lines raise
    :class:`~repro.errors.ProtocolError` -- ingest never guesses.
    """
    line = line.rstrip("\r\n")
    stripped = line.strip()
    if not stripped:
        return ("blank", None, None)
    if stripped == BYE_LINE:
        return ("bye", None, None)
    if stripped.startswith(END_PREFIX):
        tenant = stripped[len(END_PREFIX):]
        return ("end", validate_tenant(tenant), None)
    if stripped.startswith("#"):
        raise ProtocolError(f"unknown control line {stripped!r} "
                            f"(known: {BYE_LINE!r}, {END_PREFIX!r}<tenant>)")
    tenant, separator, payload = line.partition("|")
    if not separator or not payload.strip():
        raise ProtocolError(
            f"malformed ingest line {line!r}: expected "
            f"<tenant>|<std-event-line>")
    return ("event", validate_tenant(tenant.strip()), payload)
