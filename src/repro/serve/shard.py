"""One shard: many tenants, one :class:`~repro.stream.StreamEngine` each.

:class:`TenantShard` is the process-agnostic core of the service.  A
worker process wraps one around its command queue; the degenerate
single-process case (multi-source ``repro watch``) drives one directly.
Either way the shard owns everything per-tenant:

* lazily creating the engine on the tenant's first event -- restoring it
  from ``<checkpoint_dir>/<tenant>.json`` when a checkpoint exists, so a
  respawned worker resumes every tenant it hosted;
* parsing STD payload lines into events with per-tenant index counters
  (seeded from the restored engine after a recovery, so replayed lines
  keep assigning the same indexes);
* *sequence-skip* dedup for crash recovery: every event carries the
  supervisor's per-tenant sequence number, and a line whose sequence is
  ``<= engine.cursor`` was already consumed before the crash -- it is
  dropped without parsing.  This is what makes journal replay idempotent;
* periodic checkpoints every ``checkpoint_every`` events, acknowledged
  through ``on_checkpoint`` so the supervisor can trim its journal;
* the final flush and summary document on ``#end``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ServeError
from repro.serve.routing import validate_tenant
from repro.stream.checkpoint import restore_engine, save_checkpoint
from repro.stream.engine import StreamEngine, StreamFinding
from repro.stream.window import parse_window
from repro.trace.formats import parse_trace_line
from repro.obs import metrics as obs_metrics

#: ``on_finding`` callback signature: ``(tenant, StreamFinding)``.
FindingHook = Callable[[str, StreamFinding], None]

#: ``on_checkpoint`` callback signature: ``(tenant, cursor)``.
CheckpointHook = Callable[[str, int], None]


@dataclass(frozen=True)
class ShardOptions:
    """Plain-data shard configuration (picklable: it crosses the process
    boundary as part of the worker spawn arguments)."""

    analyses: Tuple[str, ...]
    backend: Optional[str] = "auto"
    window: Optional[str] = None
    flush_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None
    policy: Optional[str] = None
    policy_state: Optional[str] = None


@dataclass
class _Tenant:
    """Book-keeping for one hosted tenant."""

    engine: StreamEngine
    #: Per-thread next-index counters for STD payload parsing.  Seeded
    #: from the restored engine so post-recovery lines parse to the same
    #: indexes they would have had in the uninterrupted run.
    counters: Dict[int, int] = field(default_factory=dict)
    since_checkpoint: int = 0
    restored_at: int = 0  #: engine cursor at restore time (0 = fresh)


class TenantShard:
    """Host many per-tenant engines inside one process (see module doc)."""

    def __init__(self, options: ShardOptions,
                 on_finding: Optional[FindingHook] = None,
                 on_checkpoint: Optional[CheckpointHook] = None) -> None:
        if not options.analyses:
            raise ServeError("shard needs at least one analysis")
        self.options = options
        self.on_finding = on_finding
        self.on_checkpoint = on_checkpoint
        self._tenants: Dict[str, _Tenant] = {}
        self._policy = None
        self._policy_built = False
        # Bound once at construction, like the engine does.
        self._registry = obs_metrics.ACTIVE

    # ------------------------------------------------------------------ #
    # Tenant lifecycle
    # ------------------------------------------------------------------ #
    @property
    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    def _checkpoint_path(self, tenant: str) -> Optional[Path]:
        if self.options.checkpoint_dir is None:
            return None
        return Path(self.options.checkpoint_dir) / f"{tenant}.json"

    def _build_policy(self):
        if not self._policy_built:
            self._policy_built = True
            options = self.options
            if options.backend == "auto" or options.policy is not None \
                    or options.policy_state is not None:
                from repro.tune import make_policy

                self._policy = make_policy(options.policy,
                                           state_path=options.policy_state)
        return self._policy

    def ensure_tenant(self, tenant: str) -> _Tenant:
        """The tenant's entry, creating (or checkpoint-restoring) it."""
        entry = self._tenants.get(tenant)
        if entry is not None:
            return entry
        validate_tenant(tenant)
        policy = self._build_policy()

        def emit(item: StreamFinding, _tenant: str = tenant) -> None:
            if self.on_finding is not None:
                self.on_finding(_tenant, item)

        path = self._checkpoint_path(tenant)
        if path is not None and os.path.exists(path):
            engine = restore_engine(path, on_finding=emit, policy=policy)
            entry = _Tenant(engine=engine,
                            counters=dict(engine._next_index),
                            restored_at=engine.cursor)
        else:
            engine = StreamEngine(
                list(self.options.analyses),
                backend=self.options.backend,
                window=parse_window(self.options.window,
                                    flush_every=self.options.flush_every),
                name=tenant,
                on_finding=emit,
                policy=policy,
            )
            entry = _Tenant(engine=engine)
        self._tenants[tenant] = entry
        if self._registry is not None:
            self._registry.counter("serve_tenants_total").inc()
        return entry

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def feed_line(self, tenant: str, seq: int, line: str,
                  enqueued_at: Optional[float] = None) -> bool:
        """Feed one STD payload line carrying sequence number ``seq``.

        Returns ``True`` when the event was consumed, ``False`` when it
        was skipped as a recovery duplicate (``seq <= engine.cursor``:
        already consumed before the checkpoint this engine restored
        from).  Skipped lines are not even parsed -- the restored parse
        counters already account for them.
        """
        entry = self.ensure_tenant(tenant)
        engine = entry.engine
        if seq <= engine.cursor:
            return False
        if seq != engine.cursor + 1:
            raise ServeError(
                f"tenant {tenant!r}: sequence gap (got {seq}, engine at "
                f"{engine.cursor}) -- the journal replay is incomplete")
        event = parse_trace_line(line, entry.counters, seq)
        if event is None:
            raise ProtocolError(
                f"tenant {tenant!r}: payload {line!r} is not an event line")
        engine.feed(event)
        if self._registry is not None:
            self._registry.counter("serve_events_total",
                                   tenant=tenant).inc()
            if enqueued_at is not None:
                self._registry.gauge("serve_tenant_lag_seconds",
                                     tenant=tenant) \
                    .set(max(0.0, time.time() - enqueued_at))
        entry.since_checkpoint += 1
        every = self.options.checkpoint_every
        if every and entry.since_checkpoint >= every:
            self.checkpoint_tenant(tenant)
        return True

    def checkpoint_tenant(self, tenant: str) -> Optional[str]:
        """Save the tenant's checkpoint now (no-op without a directory).
        Returns the path written, and acknowledges via ``on_checkpoint``
        so the supervisor can trim its recovery journal."""
        entry = self._tenants[tenant]
        path = self._checkpoint_path(tenant)
        if path is None:
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        save_checkpoint(entry.engine, path)
        entry.since_checkpoint = 0
        if self.on_checkpoint is not None:
            self.on_checkpoint(tenant, entry.engine.cursor)
        return str(path)

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #
    def end_tenant(self, tenant: str) -> Dict[str, Any]:
        """Final flush for ``tenant``; returns its summary document.

        The document is shaped exactly like the ``jsonl`` summary a
        single-source ``repro watch`` prints for the same feed -- that is
        the parity contract the integration tests pin.
        """
        entry = self._tenants.pop(tenant, None)
        if entry is None:
            # An end for a tenant that never sent an event still yields a
            # (trivial) summary rather than an error: ending an idle
            # session is a normal client action.
            entry = self.ensure_tenant(tenant)
            self._tenants.pop(tenant, None)
        result = entry.engine.finish()
        path = self._checkpoint_path(tenant)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            save_checkpoint(entry.engine, path)
            if self.on_checkpoint is not None:
                self.on_checkpoint(tenant, entry.engine.cursor)
        summary: Dict[str, Any] = {
            "type": "summary",
            "name": result.name,
            "events": result.stats.events,
            "threads": result.stats.threads,
            "flushes": result.stats.flushes,
            "emitted": result.stats.emitted,
            "backbone_edges": result.stats.backbone_edges,
            "final": {name: [str(finding) for finding in res.findings]
                      for name, res in sorted(result.results.items())},
        }
        if result.backends_selected:
            summary["backends_selected"] = dict(result.backends_selected)
        if result.errors:
            summary["errors"] = dict(result.errors)
        if result.warnings:
            summary["warnings"] = [str(item) for item in result.warnings]
        return summary

    def close(self) -> Dict[str, Dict[str, Any]]:
        """End every still-active tenant (worker shutdown); returns their
        summaries keyed by tenant."""
        return {tenant: self.end_tenant(tenant)
                for tenant in list(self.tenants)}
