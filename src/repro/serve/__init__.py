"""Multi-tenant sharded streaming analysis service (``repro serve``).

``repro watch`` monitors one event feed; this package turns the same
streaming engine into a *service*: many tenants (independent event feeds,
one session id each), sharded by consistent hash across N worker
processes, each worker hosting one :class:`~repro.stream.StreamEngine`
per tenant.  The supervisor applies per-tenant quotas, bounded-queue
backpressure that pushes back on the ingest socket instead of buffering
unboundedly, merges every worker's findings into one ordered feed, writes
periodic per-tenant JSON checkpoints, and respawns crashed workers with
tenant state recovered by checkpoint restore plus journal replay.

Layering (each module usable on its own):

* :mod:`repro.serve.routing`   -- consistent-hash ring, tenant ids;
* :mod:`repro.serve.protocol`  -- the ingest line protocol
  (``<tenant>|<std-event-line>``, ``#end|<tenant>``, ``#bye``);
* :mod:`repro.serve.shard`     -- :class:`TenantShard`, the in-process
  many-engines host (used by worker processes *and* by the degenerate
  single-process case behind multi-source ``repro watch``);
* :mod:`repro.serve.worker`    -- the worker process entry point;
* :mod:`repro.serve.supervisor` -- :class:`Supervisor`: worker lifecycle,
  journals, crash recovery, the merged findings feed;
* :mod:`repro.serve.frontdoor` -- the asyncio socket front door and the
  file/corpus replay mode;
* :mod:`repro.serve.service`   -- :func:`run_serve`, the facade entry
  consumed by :meth:`repro.api.Session.serve`.
"""

from repro.serve.routing import HashRing, validate_tenant
from repro.serve.protocol import (
    BYE_LINE,
    format_end,
    format_event_line,
    parse_line,
)
from repro.serve.shard import ShardOptions, TenantShard
from repro.serve.supervisor import Supervisor, TenantFinding
from repro.serve.frontdoor import replay_lines, replay_sources, send_lines, \
    serve_socket
from repro.serve.service import ServeOutcome, run_serve

__all__ = [
    "BYE_LINE",
    "HashRing",
    "ServeOutcome",
    "ShardOptions",
    "Supervisor",
    "TenantFinding",
    "TenantShard",
    "format_end",
    "format_event_line",
    "parse_line",
    "replay_lines",
    "replay_sources",
    "run_serve",
    "send_lines",
    "serve_socket",
    "validate_tenant",
]
