"""The worker process: one :class:`~repro.serve.shard.TenantShard` behind
a command queue.

Command messages (tuples, first element is the verb):

* ``("event", tenant, seq, std_line, enqueued_at)`` -- feed one event;
* ``("end", tenant)``                               -- final flush, reply
  with the tenant's summary;
* ``("checkpoint", tenant)``                        -- checkpoint now;
* ``("stop",)``                                     -- drain-free
  shutdown: ship telemetry, reply ``stopped``, exit.

Result messages (posted to the shared results queue; every message leads
with the worker index so the collector can attribute it):

* ``("finding", index, tenant, {"analysis", "position", "finding"})``
* ``("ack", index, tenant, cursor)``   -- checkpoint written;
* ``("summary", index, tenant, doc)``  -- tenant ended;
* ``("error", index, tenant, message)`` -- a command failed (the tenant's
  feed is poisoned; subsequent events for it are dropped and re-reported,
  but its ``end`` still yields a summary so the supervisor's drain
  terminates, with the poison recorded under ``errors.ingest``);
* ``("telemetry", index, snapshot)``   -- the worker registry's snapshot,
  shipped once at shutdown;
* ``("stopped", index)``               -- clean exit marker.

Telemetry: when enabled, the worker installs a fresh registry and runs
everything under one ``serve_worker`` root span.  Root spans are stamped
with ``pid``/``tid``/``wall_start_ns`` at record time, so each worker's
span tree opens its own lane when the supervisor merges snapshots into
the session timeline.

Fault injection: ``crash_after=N`` makes the worker die via ``os._exit``
(no cleanup, no queue flush -- as close to ``kill -9`` as cooperating
code gets) after consuming N event commands.  The supervisor only passes
it to a worker's *first* incarnation, so a respawned worker survives.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.serve.shard import ShardOptions, TenantShard


def worker_main(index: int, commands, results, options: ShardOptions,
                telemetry: bool = False,
                crash_after: Optional[int] = None) -> None:
    """Run one worker until a ``stop`` command (or injected crash)."""
    from repro.obs import metrics as obs_metrics

    registry = None
    root_span = None
    if telemetry:
        registry = obs_metrics.MetricsRegistry()
        obs_metrics.set_registry(registry)
        root_span = registry.span("serve_worker", worker=index)
        root_span.__enter__()

    def emit(tenant: str, item: Any) -> None:
        results.put(("finding", index, tenant,
                     {"analysis": item.analysis, "position": item.position,
                      "finding": str(item.finding)}))

    def ack(tenant: str, cursor: int) -> None:
        results.put(("ack", index, tenant, cursor))

    shard = TenantShard(options, on_finding=emit, on_checkpoint=ack)
    #: Tenants whose feed raised: drop their further events, reporting
    #: each drop, instead of cascading one bad line into a crash loop.
    poisoned: Dict[str, str] = {}
    consumed = 0

    while True:
        message = commands.get()
        verb = message[0]
        if verb == "stop":
            break
        try:
            if verb == "event":
                _, tenant, seq, line, enqueued_at = message
                if tenant in poisoned:
                    results.put(("error", index, tenant, poisoned[tenant]))
                    continue
                shard.feed_line(tenant, seq, line, enqueued_at)
                consumed += 1
                if crash_after is not None and consumed >= crash_after:
                    # Simulated hard crash -- see module docstring.
                    os._exit(1)
            elif verb == "end":
                _, tenant = message
                # A poisoned tenant still gets a summary (covering what
                # it consumed before the bad line) -- the supervisor's
                # drain must terminate even for broken feeds.
                error = poisoned.pop(tenant, None)
                doc = shard.end_tenant(tenant)
                if error is not None:
                    doc.setdefault("errors", {})["ingest"] = error
                    results.put(("error", index, tenant, error))
                results.put(("summary", index, tenant, doc))
            elif verb == "checkpoint":
                _, tenant = message
                if tenant not in poisoned:
                    shard.checkpoint_tenant(tenant)
        except ReproError as error:
            tenant = message[1] if len(message) > 1 else "?"
            poisoned[tenant] = str(error)
            results.put(("error", index, tenant, str(error)))

    if root_span is not None:
        root_span.__exit__(None, None, None)
    if registry is not None:
        results.put(("telemetry", index, registry.snapshot()))
        obs_metrics.set_registry(None)
    results.put(("stopped", index))
