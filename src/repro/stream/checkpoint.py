"""Checkpoint/restore for the streaming engine.

A checkpoint captures everything a monitor needs to resume after a
restart: the *event cursor* (how many source events were consumed), the
retained *window buffer* (as STD lines, with per-thread index bases), the
per-analysis *dedup keys* of findings already emitted, and the engine
configuration (analyses, backend, window policy).

Derived state -- the live trace's indexes, the shared backbone order, and
every native analysis's internal state -- is deliberately **not** stored:
it is reconstructed deterministically by replaying the buffered events
through the normal ingestion path on restore.  That keeps checkpoints
format-stable and independent of backend internals, at the cost of an
O(buffer) replay on startup.

A checkpoint's size is proportional to the *retained buffer*.  Under a
bounded window that is at most the window size; under the default
unbounded window the buffer is the entire history consumed so far -- the
price of exact batch parity -- so each save is O(events) and a save every
``checkpoint_every`` events costs O(events^2 / interval) cumulatively.
Long-lived monitors that checkpoint frequently should use a bounded
window, or accept that exact mode trades checkpoint cost for exactness.

Checkpoints are JSON documents written atomically (temp file + rename), so
a crash mid-save never corrupts the previous checkpoint.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.errors import CheckpointError
from repro.stream.engine import StreamEngine, StreamFinding

#: Format version stamped into (and required from) every checkpoint.
CHECKPOINT_VERSION = 1


def save_checkpoint(engine: StreamEngine, path: Union[str, Path]) -> None:
    """Write ``engine``'s state to ``path`` atomically."""
    engine.stats.checkpoints += 1
    registry = engine.metrics
    timer = registry.histogram("checkpoint_seconds").time() \
        if registry is not None else None
    span = registry.span("checkpoint") if registry is not None else None
    if timer is not None:
        timer.__enter__()
    if span is not None:
        span.__enter__()
    try:
        state = engine.state_dict()
        path = Path(path)
        temp_path = path.with_name(path.name + ".tmp")
        try:
            with open(temp_path, "w", encoding="utf-8") as stream:
                json.dump(state, stream, indent=1)
                stream.write("\n")
                # Flush the document to stable storage *before* the rename
                # publishes it: os.replace is atomic in the namespace, but
                # without the fsync a power loss could leave the new name
                # pointing at not-yet-written blocks -- a torn checkpoint.
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp_path, path)
        except OSError as error:
            # Never leave a half-written .tmp behind to confuse operators
            # (restore itself only ever reads the published name).
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            if span is not None:
                # Close by hand so the span records the error status.
                span.__exit__(CheckpointError, error, None)
                span = None
            raise CheckpointError(
                f"cannot save checkpoint to {path}: {error}") from error
    finally:
        if span is not None:
            span.__exit__(None, None, None)
        if timer is not None:
            timer.__exit__(None, None, None)
    if registry is not None:
        registry.counter("checkpoint_total").inc()
        registry.gauge("checkpoint_bytes").set(os.path.getsize(path))


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a checkpoint document, validating its version."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            state = json.load(stream)
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") \
            from error
    except json.JSONDecodeError as error:
        raise CheckpointError(f"corrupt checkpoint {path}: {error}") from error
    if not isinstance(state, dict) or state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has unsupported version "
            f"{state.get('version') if isinstance(state, dict) else state!r}")
    return state


def restore_engine(path: Union[str, Path],
                   on_finding: Optional[Callable[[StreamFinding], None]]
                   = None, policy=None) -> StreamEngine:
    """Rebuild a :class:`StreamEngine` from a checkpoint file.

    The returned engine has replayed its buffered events (rebuilding all
    derived state) and resumes consuming a source with
    ``engine.run(source, skip=engine.cursor)``.  ``policy`` is the
    backend-selection policy applied if the checkpoint was taken before
    an ``auto`` pick was resolved (ignored otherwise).
    """
    state = load_checkpoint(path)
    return StreamEngine.from_state(state, on_finding=on_finding,
                                   policy=policy)
