"""The streaming analysis engine.

:class:`StreamEngine` feeds events one at a time into N concurrently
attached analyses.  It maintains, shared across all attachments:

* the growing per-thread chains (a live :class:`~repro.trace.trace.Trace`
  whose derived indexes advance incrementally with every event), and
* a single shared incremental-CSST partial order holding the stream's sync
  backbone (release->acquire edges per lock, fork/join edges), inserted
  online as the corresponding events arrive.

Analyses consume the stream through the online protocol of
:class:`~repro.analyses.common.base.Analysis` (``begin``/``feed``/
``flush``).  *Streaming-native* analyses (``streaming_native = True``)
report findings from ``feed`` the moment they are discovered;
batch-fallback analyses are re-evaluated at every flush point (window
boundaries, ``flush_every`` marks, end of stream) over the events currently
buffered, and the engine deduplicates so every finding is **emitted
exactly once**, the first time some flush discovers it.  (Under
*overlapping bounded windows*, findings that embed bare node tuples
instead of events -- see :func:`finding_key` -- can evade the dedup and
repeat.)

The shared sync order is the stream's own happens-before substrate: it is
exposed to embedders via :attr:`StreamEngine.order` (and as the
``backbone_edges`` monitor metric), and it is the seam future
sharding/async work attaches to.  Attached analyses keep their own orders
-- each analysis's edge set is analysis-specific (saturation, atomics,
deliberate lock-order omission), so sharing the backbone would change
their answers.  Pass ``backbone=False`` to skip its maintenance cost when
neither the metric nor the substrate is wanted.

Exactness contract (unbounded window): the **final flush** sees the whole
trace, so ``StreamResult.results`` is identical to a batch
``Analysis.run()`` -- streaming changes *when* findings surface, never the
final answer.  The emission log (``StreamResult.findings``) has *alarm*
semantics: each entry was a true finding of the trace consumed up to its
position.  For monotone analyses (e.g. the streaming-native C11 detector)
alarms and final findings coincide exactly; predictive analyses are
non-monotone -- a reordering witness valid for a prefix can be invalidated
by later events -- so a mid-stream alarm is occasionally absent from the
final set.  Bounded windows (tumbling/sliding) additionally trade
completeness for bounded memory: each flush only sees the buffered window
(re-indexed to a fresh trace), so findings whose evidence spans evicted
events are missed by construction.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.core.factory import AUTO_BACKEND
from repro.core.growable import GrowableOrder
from repro.errors import StreamError
from repro.obs import metrics as obs_metrics
from repro.trace.event import Event, EventKind
from repro.trace.trace import Trace
from repro.stream.source import EventSource
from repro.stream.window import UnboundedWindow, Window

Node = Tuple[int, int]

#: Backend maintaining the shared sync-order backbone.  Incremental CSSTs
#: are the paper's structure of choice for online insertion workloads.
BACKBONE_BACKEND = "incremental-csst"


# --------------------------------------------------------------------------- #
# Finding identity
# --------------------------------------------------------------------------- #
def finding_key(finding: Any, base: Optional[Dict[int, int]] = None) -> str:
    """A stable, JSON-safe identity string for an analysis finding.

    Findings are frozen dataclasses embedding :class:`Event` objects; the
    key walks that structure generically.  ``base`` maps a thread id to
    the index offset of a re-based window snapshot, so the same
    Event-bearing finding keys identically whether it was discovered from
    the full trace or from a window whose events were re-indexed.

    Known limitation: only :class:`Event` instances are rebased.  Findings
    that embed bare ``(thread, index)`` tuples (the TSO witness, the UAF
    constraint nodes) cannot be told apart from ordinary numeric tuples,
    so under *overlapping bounded windows* such a finding rediscovered in
    a later window keys differently and is emitted again.  Unbounded
    windows are unaffected (``base`` is empty, keys are exact), which is
    where the engine's exactly-once contract is stated.
    """
    offsets = base or {}

    def walk(value: Any):
        if isinstance(value, Event):
            index = value.index + offsets.get(value.thread, 0)
            return ("E", value.thread, index, value.kind.value)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return (type(value).__name__,) + tuple(
                walk(getattr(value, f.name))
                for f in dataclasses.fields(value))
        if isinstance(value, (tuple, list)):
            return tuple(walk(item) for item in value)
        if isinstance(value, (set, frozenset)):
            return tuple(sorted(repr(walk(item)) for item in value))
        if isinstance(value, enum.Enum):
            return value.value
        return repr(value)

    return repr(walk(finding))


# --------------------------------------------------------------------------- #
# Result containers
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamFinding:
    """One finding, stamped with the stream position that surfaced it."""

    analysis: str
    finding: Any
    position: int  #: 1-based count of events consumed when it was emitted

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.position}] {self.analysis}: {self.finding}"


@dataclass(frozen=True)
class StreamWarning:
    """A typed, non-fatal condition of a streaming run.

    ``category`` is a stable machine-readable tag (currently
    ``"backend-fallback"``: a requested backend was inapplicable to an
    analysis and the engine substituted its default -- previously a
    silent switch).  ``analysis`` names the affected attachment.
    """

    category: str
    analysis: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.category}] {self.analysis}: {self.message}"


@dataclass
class StreamStats:
    """Live counters of a streaming run."""

    events: int = 0
    threads: int = 0
    flushes: int = 0
    flush_errors: int = 0
    emitted: int = 0
    evicted: int = 0
    backbone_edges: int = 0
    checkpoints: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class StreamResult:
    """Outcome of a streaming run (returned by :meth:`StreamEngine.run`)."""

    name: str
    findings: List[StreamFinding]
    results: Dict[str, AnalysisResult]
    stats: StreamStats
    #: Analyses whose *last* flush failed (e.g. the stream stopped in the
    #: middle of a pending operation), with the error message.  Their
    #: ``results`` entry is the last successful flush, if any.
    errors: Dict[str, str] = field(default_factory=dict)
    #: Typed non-fatal conditions (see :class:`StreamWarning`).
    warnings: List[StreamWarning] = field(default_factory=list)
    #: Concrete backend picked per analysis when the ``auto``
    #: pseudo-backend was requested (empty otherwise).
    backends_selected: Dict[str, str] = field(default_factory=dict)

    @property
    def finding_count(self) -> int:
        return len(self.findings)

    def findings_for(self, analysis: str) -> List[Any]:
        """Findings *emitted* (alarm stream) for one analysis, in emission
        order.  See the module docstring: for non-monotone predictive
        analyses this can be a superset of :meth:`final_findings_for`."""
        return [item.finding for item in self.findings
                if item.analysis == analysis]

    def final_findings_for(self, analysis: str) -> List[Any]:
        """The authoritative findings of the final flush for one analysis
        (batch-identical under an unbounded window)."""
        result = self.results.get(analysis)
        return list(result.findings) if result is not None else []

    def summary(self) -> str:
        per_analysis = ", ".join(
            f"{name}: {result.finding_count}"
            for name, result in sorted(self.results.items()))
        return (f"stream[{self.name}]: {self.stats.events} events, "
                f"{self.stats.flushes} flushes, {self.finding_count} findings "
                f"({per_analysis})")


class StreamView:
    """What an attached analysis sees of the stream: a name and a snapshot
    of the currently buffered events (memoised per flush point)."""

    def __init__(self, engine: "StreamEngine") -> None:
        self._engine = engine

    @property
    def name(self) -> str:
        return self._engine.name

    @property
    def position(self) -> int:
        """Events consumed so far."""
        return self._engine.cursor

    def snapshot(self) -> Trace:
        """The buffered events as a trace (re-indexed if windowed)."""
        return self._engine.snapshot()[0]


@dataclass
class _Attachment:
    """One analysis attached to the stream."""

    analysis: Analysis
    name: str
    native: bool
    #: Native attachment whose ``auto`` backend is not yet resolved: its
    #: per-event ``feed`` is held back (the lazy online order would try to
    #: build a backend named "auto") and replayed at resolution time.
    held: bool = False
    emitted: set = field(default_factory=set)
    last_result: Optional[AnalysisResult] = None
    last_error: Optional[str] = None
    # Telemetry instruments, bound once at engine construction when a
    # metrics registry is active (None otherwise -- the disabled path
    # never touches them).
    m_feed: Any = None
    m_flush: Any = None
    m_findings: Any = None


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #
class StreamEngine:
    """Online analysis over an event stream (see module docstring).

    Parameters
    ----------
    analyses:
        Analysis names (registry keys) or instances to attach.  Instances
        must use *named* backend specs so flushes can rebuild fresh orders.
    backend:
        Backend name forced on analyses constructed from names (default:
        each analysis's own default backend).  The ``auto`` pseudo-backend
        defers the choice to a selection policy (:mod:`repro.tune`): the
        engine extracts trace-shape features from the stream's preamble
        (the first :data:`AUTO_PREAMBLE_EVENTS` events, or whatever has
        arrived by the first flush) and pins one concrete backend per
        attachment for the rest of the run.
    policy:
        Selection policy for ``auto`` (a name, a ``BackendPolicy``
        instance, or ``None`` for the tuning layer's default).
    window:
        A :class:`~repro.stream.window.Window` policy (default unbounded).
    backbone:
        Maintain the shared sync-order backbone (default: on for unbounded
        windows, off for bounded ones -- the backbone cannot evict, so it
        would break the window's memory bound).
    on_finding:
        Callback invoked with each :class:`StreamFinding` as it is emitted.
    """

    #: Events of stream preamble observed before resolving ``auto`` picks.
    AUTO_PREAMBLE_EVENTS = 64

    def __init__(self, analyses: Sequence[Union[str, Analysis]],
                 *, backend: Optional[str] = None,
                 window: Optional[Window] = None,
                 name: str = "stream",
                 backbone: Optional[bool] = None,
                 on_finding: Optional[Callable[[StreamFinding], None]] = None,
                 policy=None,
                 ) -> None:
        if not analyses:
            raise StreamError("StreamEngine needs at least one analysis")
        if backend is not None and backend != AUTO_BACKEND:
            from repro.core import BACKENDS

            if backend not in BACKENDS:
                known = ", ".join(sorted(BACKENDS))
                raise StreamError(
                    f"unknown partial-order backend {backend!r}; "
                    f"known: {known}")
        self.name = name
        self.backend_option = backend
        self._policy = policy
        self.warnings: List[StreamWarning] = []
        self.backends_selected: Dict[str, str] = {}
        self.window = window if window is not None else UnboundedWindow()
        self.on_finding = on_finding
        self.stats = StreamStats()
        self._findings: List[StreamFinding] = []
        self._cursor = 0
        self._next_index: Dict[int, int] = {}
        self._evicted_per_thread: Dict[int, int] = {}
        self._buffer: List[Event] = []
        self._live_trace: Optional[Trace] = (
            None if self.window.bounded else Trace(name=name))
        self._snapshot_cache: Optional[Tuple[int, Trace, Dict[int, int]]] = None
        self._last_flush_cursor: Optional[int] = None
        self._finished = False

        # Shared sync-order backbone.
        if backbone is None:
            backbone = not self.window.bounded
        if backbone and self.window.bounded:
            raise StreamError(
                "the shared backbone order cannot evict events; disable it "
                "(backbone=False) when using a bounded window")
        self._order: Optional[GrowableOrder] = (
            GrowableOrder(BACKBONE_BACKEND, num_chains=1, capacity_hint=256)
            if backbone else None)
        self._last_release: Dict[object, Event] = {}
        self._pending_forks: Dict[int, Node] = {}
        self._last_node: Dict[int, Node] = {}

        # Attach analyses.
        self._view = StreamView(self)
        self._attachments: List[_Attachment] = []
        self._auto_pending: List[_Attachment] = []
        for spec in analyses:
            analysis = self._build_analysis(spec)
            native = bool(analysis.streaming_native) and not self.window.bounded
            pending = isinstance(analysis._backend_spec, str) \
                and analysis._backend_spec == AUTO_BACKEND
            analysis.begin(self._view)
            attachment = _Attachment(analysis=analysis, name=analysis.name,
                                     native=native,
                                     held=native and pending)
            self._attachments.append(attachment)
            if pending:
                self._auto_pending.append(attachment)
        names = [attachment.name for attachment in self._attachments]
        if len(set(names)) != len(names):
            raise StreamError(f"duplicate analyses attached: {names}")

        # Telemetry: bind instruments once against the registry active at
        # construction time.  ``self._metrics is None`` is the entire
        # disabled-mode cost on the per-event path.
        self._metrics = obs_metrics.ACTIVE
        self._m_events = self._m_flushes = self._m_flush_errors = None
        self._m_evicted = self._m_buffered = None
        if self._metrics is not None:
            registry = self._metrics
            self._m_events = registry.counter("stream_events_total")
            self._m_flushes = registry.counter("stream_flushes_total")
            self._m_flush_errors = registry.counter(
                "stream_flush_errors_total")
            self._m_evicted = registry.counter("stream_evicted_total")
            self._m_buffered = registry.gauge("stream_buffered_events")
            for attachment in self._attachments:
                if attachment.native:
                    attachment.m_feed = registry.histogram(
                        "stream_feed_seconds", analysis=attachment.name)
                attachment.m_flush = registry.histogram(
                    "stream_flush_seconds", analysis=attachment.name)
                attachment.m_findings = registry.counter(
                    "stream_findings_total", analysis=attachment.name)

    def _build_analysis(self, spec: Union[str, Analysis]) -> Analysis:
        if isinstance(spec, Analysis):
            if not isinstance(spec._backend_spec, str):
                raise StreamError(
                    f"analysis {spec.name!r}: streaming requires a named "
                    "backend spec (flushes rebuild fresh backend instances)")
            return spec
        cls = Analysis.by_name(spec)
        backend = self.backend_option or cls.default_backend()
        if backend == AUTO_BACKEND:
            return cls(AUTO_BACKEND, policy=self._policy)
        if backend not in cls.applicable_backends():
            fallback = cls.default_backend()
            self.warnings.append(StreamWarning(
                category="backend-fallback", analysis=cls.name,
                message=f"requested backend {backend!r} is not applicable "
                        f"to analysis {cls.name!r}; using its default "
                        f"{fallback!r} instead"))
            backend = fallback
        return cls(backend)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cursor(self) -> int:
        """Total events consumed from the source so far."""
        return self._cursor

    @property
    def analyses(self) -> List[str]:
        return [attachment.name for attachment in self._attachments]

    @property
    def metrics(self) -> Optional["obs_metrics.MetricsRegistry"]:
        """The metrics registry this engine reports into (bound at
        construction; ``None`` when telemetry was disabled then)."""
        return self._metrics

    @property
    def order(self) -> Optional[GrowableOrder]:
        """The shared sync-order backbone (``None`` when disabled)."""
        return self._order

    @property
    def buffered_events(self) -> int:
        """Events currently retained (window buffer, or the whole history
        under an unbounded window)."""
        if self._live_trace is not None:
            return len(self._live_trace)
        return len(self._buffer)

    @property
    def findings(self) -> List[StreamFinding]:
        return list(self._findings)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def feed(self, event: Event) -> None:
        """Consume one event: index it, maintain the shared state, give it
        to every native analysis, and flush/evict at window boundaries."""
        if self._finished:
            raise StreamError("stream already finished")
        self._cursor += 1
        self._ingest(event)
        if self._auto_pending and self._cursor >= self.AUTO_PREAMBLE_EVENTS:
            self._resolve_auto()
        self.stats.events = self._cursor
        self.stats.threads = len(self._next_index)
        if self._metrics is not None:
            self._m_events.inc()
            self._m_buffered.set(self.buffered_events)
        if self.window.boundary(self._cursor):
            self.flush()
            self._evict()

    def _ingest(self, event: Event) -> None:
        """Shared per-event bookkeeping (also used for checkpoint replay)."""
        expected = self._next_index.get(event.thread, 0)
        if event.index != expected:
            raise StreamError(
                f"out-of-order stream: event {event} has index "
                f"{event.index}, expected {expected} for thread "
                f"{event.thread}")
        self._next_index[event.thread] = expected + 1
        # Exactly one retained copy: the live trace under an unbounded
        # window (it never evicts), the window buffer under a bounded one.
        if self._live_trace is not None:
            self._live_trace.add(event)
        else:
            self._buffer.append(event)
            self._snapshot_cache = None
        self._maintain_backbone(event)
        for attachment in self._attachments:
            if attachment.native and not attachment.held:
                if attachment.m_feed is not None:
                    with attachment.m_feed.time():
                        found = list(attachment.analysis.feed(event))
                else:
                    found = attachment.analysis.feed(event)
                for finding in found:
                    key = finding_key(finding)
                    # The dedup check matters during checkpoint replay:
                    # re-feeding the buffer rediscovers findings whose keys
                    # were restored, and those must not re-emit.
                    if key not in attachment.emitted:
                        self._emit(attachment, finding, key)

    def _maintain_backbone(self, event: Event) -> None:
        """Insert the event's sync edges into the shared order, online."""
        order = self._order
        if order is None:
            return
        # A fork recorded before the child's first event resolves now.
        pending = self._pending_forks.pop(event.thread, None) \
            if event.index == 0 else None
        if pending is not None:
            order.insert_edge(pending, event.node)
        if event.kind is EventKind.ACQUIRE:
            previous = self._last_release.get(event.variable)
            if previous is not None and previous.thread != event.thread:
                if not order.reachable(previous.node, event.node):
                    order.insert_edge(previous.node, event.node)
        elif event.kind is EventKind.RELEASE:
            self._last_release[event.variable] = event
        elif event.kind is EventKind.FORK and event.target is not None:
            if event.target != event.thread:
                self._pending_forks[event.target] = event.node
        elif event.kind is EventKind.JOIN and event.target is not None:
            last = self._last_node.get(event.target)
            if last is not None and event.target != event.thread:
                if not order.reachable(last, event.node):
                    order.insert_edge(last, event.node)
        self._last_node[event.thread] = event.node
        self.stats.backbone_edges = order.edge_count

    # ------------------------------------------------------------------ #
    # Auto-backend resolution
    # ------------------------------------------------------------------ #
    def _resolve_auto(self) -> None:
        """Pin a concrete backend on every pending ``auto`` attachment.

        Runs once, over whatever preamble has arrived (the feed path
        triggers it at :data:`AUTO_PREAMBLE_EVENTS`; a flush on a shorter
        stream triggers it with what there is).  The pick is pinned by
        rewriting the attachment's backend spec, so later flushes never
        flip-flop, checkpoints record the concrete name, and the lazy
        online order of native analyses builds against a real backend.
        Events already ingested are replayed into natives that were held
        back, with the usual exactly-once emission.
        """
        if not self._auto_pending:
            return
        from repro import tune

        policy = self._policy
        if policy is None or isinstance(policy, str):
            policy = self._policy = tune.make_policy(policy)
        snapshot, _ = self.snapshot()
        features = tune.extract_features(snapshot)
        pending, self._auto_pending = self._auto_pending, []
        for attachment in pending:
            analysis = attachment.analysis
            chosen = tune.choose_backend(type(analysis), features, policy)
            analysis._backend_spec = chosen
            analysis._resolved_backend = chosen
            analysis._selection_features = features
            self.backends_selected[attachment.name] = chosen
            if attachment.held:
                attachment.held = False
                replay = self._live_trace if self._live_trace is not None \
                    else self._buffer
                for event in replay:
                    for finding in analysis.feed(event):
                        key = finding_key(finding)
                        if key not in attachment.emitted:
                            self._emit(attachment, finding, key)

    # ------------------------------------------------------------------ #
    # Windowing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Tuple[Trace, Dict[int, int]]:
        """The buffered events as a trace, plus per-thread index offsets.

        Unbounded windows return the live trace itself (zero copy, offsets
        empty); bounded windows materialize a fresh trace whose per-thread
        indexes are re-based to 0, with ``offsets[thread]`` recording how
        much was subtracted.
        """
        if self._live_trace is not None:
            return self._live_trace, {}
        cache = self._snapshot_cache
        if cache is not None and cache[0] == self._cursor:
            return cache[1], cache[2]
        offsets = {thread: count
                   for thread, count in self._evicted_per_thread.items()
                   if count}
        trace = Trace(name=f"{self.name}@{self._cursor}")
        for event in self._buffer:
            shift = offsets.get(event.thread, 0)
            trace.add(dataclasses.replace(event, index=event.index - shift)
                      if shift else event)
        self._snapshot_cache = (self._cursor, trace, offsets)
        return trace, offsets

    def _evict(self) -> None:
        retain = self.window.retain()
        if retain is None or len(self._buffer) <= retain:
            return
        cut = len(self._buffer) - retain
        for event in self._buffer[:cut]:
            self._evicted_per_thread[event.thread] = (
                self._evicted_per_thread.get(event.thread, 0) + 1)
        del self._buffer[:cut]
        self._snapshot_cache = None
        self.stats.evicted += cut
        if self._m_evicted is not None:
            self._m_evicted.inc(cut)

    # ------------------------------------------------------------------ #
    # Flushing / emission
    # ------------------------------------------------------------------ #
    def flush(self) -> Dict[str, AnalysisResult]:
        """Flush every attachment over the current window contents.

        Native analyses report their accumulated state (cheap); batch
        fallbacks re-run over the snapshot.  Findings not yet emitted are
        emitted now.  Returns the per-analysis results of this flush.

        A flush can legitimately fail for an individual analysis when the
        stream stopped mid-state -- e.g. a linearizability history whose
        operations are still pending -- so per-analysis errors are recorded
        (``stats.flush_errors``, ``StreamResult.errors``) rather than
        killing the monitor: the next flush simply re-evaluates.

        With telemetry on, each flush runs under a ``stream_flush`` span
        with one ``flush_analysis`` child per attachment (error-status for
        failed ones), so a watch session renders as a real timeline.
        """
        if self._metrics is not None:
            with self._metrics.span("stream_flush"):
                return self._flush_attachments()
        return self._flush_attachments()

    def _flush_attachments(self) -> Dict[str, AnalysisResult]:
        from repro.errors import ReproError

        if self._auto_pending:
            self._resolve_auto()
        self.stats.flushes += 1
        if self._m_flushes is not None:
            self._m_flushes.inc()
        self._last_flush_cursor = self._cursor
        results: Dict[str, AnalysisResult] = {}
        offsets: Dict[int, int] = {}
        for attachment in self._attachments:
            timer = attachment.m_flush.time() \
                if attachment.m_flush is not None else None
            span = (self._metrics.span("flush_analysis",
                                       analysis=attachment.name)
                    if self._metrics is not None else None)
            try:
                if timer is not None:
                    timer.__enter__()
                if span is not None:
                    span.__enter__()
                try:
                    if attachment.native:
                        result = attachment.analysis.flush()
                    else:
                        snapshot, offsets = self.snapshot()
                        result = attachment.analysis.run(snapshot)
                except ReproError as error:
                    if span is not None:
                        # Close by hand so the span records error status.
                        span.__exit__(ReproError, error, None)
                        span = None
                    attachment.last_error = str(error)
                    self.stats.flush_errors += 1
                    if self._m_flush_errors is not None:
                        self._m_flush_errors.inc()
                    continue
            finally:
                if span is not None:
                    span.__exit__(None, None, None)
                if timer is not None:
                    timer.__exit__(None, None, None)
            attachment.last_error = None
            for finding in result.findings:
                key = finding_key(finding,
                                  None if attachment.native else offsets)
                if key not in attachment.emitted:
                    self._emit(attachment, finding, key)
            attachment.last_result = result
            results[attachment.name] = result
        return results

    def _emit(self, attachment: _Attachment, finding: Any, key: str) -> None:
        attachment.emitted.add(key)
        item = StreamFinding(analysis=attachment.name, finding=finding,
                             position=self._cursor)
        self._findings.append(item)
        self.stats.emitted += 1
        if attachment.m_findings is not None:
            attachment.m_findings.inc()
        if self.on_finding is not None:
            self.on_finding(item)

    def finish(self) -> StreamResult:
        """Final flush and result assembly.  Idempotent.

        The final flush is skipped when a window boundary already flushed
        at the current cursor -- flushing again would evaluate the
        post-eviction (possibly empty) buffer and overwrite the results of
        the complete window.
        """
        if not self._finished:
            if self._last_flush_cursor != self._cursor:
                self.flush()
            self._finished = True
        return StreamResult(
            name=self.name,
            findings=list(self._findings),
            results={attachment.name: attachment.last_result
                     for attachment in self._attachments
                     if attachment.last_result is not None},
            stats=self.stats,
            errors={attachment.name: attachment.last_error
                    for attachment in self._attachments
                    if attachment.last_error is not None},
            warnings=list(self.warnings),
            backends_selected=dict(self.backends_selected),
        )

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #
    def run(self, source: Union[EventSource, Iterable[Event]],
            *, skip: int = 0, max_events: Optional[int] = None,
            checkpoint_path: Optional[str] = None,
            checkpoint_every: Optional[int] = None) -> StreamResult:
        """Consume ``source`` to exhaustion (or ``max_events``) and finish.

        ``skip`` drops the first N source events (used when resuming from a
        checkpoint whose cursor is N).  ``checkpoint_path`` +
        ``checkpoint_every`` save the engine state every that many events
        (and once more at the end).
        """
        from repro.stream.checkpoint import save_checkpoint

        if isinstance(source, EventSource):
            iterator = source.events(skip)
        else:
            iterator = (event for position, event in enumerate(source)
                        if position >= skip)
        consumed = 0
        for event in iterator:
            self.feed(event)
            consumed += 1
            if (checkpoint_path is not None and checkpoint_every
                    and consumed % checkpoint_every == 0):
                save_checkpoint(self, checkpoint_path)
            if max_events is not None and consumed >= max_events:
                break
        result = self.finish()
        if checkpoint_path is not None:
            save_checkpoint(self, checkpoint_path)
        return result

    # ------------------------------------------------------------------ #
    # Checkpoint support (state capture/restore; file I/O lives in
    # repro.stream.checkpoint)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Any]:
        """Serializable engine state: cursor, window buffer, dedup keys."""
        from repro.trace.formats import format_event

        flush_every = getattr(self.window, "flush_every", None)
        return {
            "version": 1,
            "name": self.name,
            "cursor": self._cursor,
            "window": self.window.spec(),
            "flush_every": flush_every,
            "backbone": self._order is not None,
            "backend": self.backend_option,
            "analyses": [
                {"name": attachment.name,
                 "backend": str(attachment.analysis._backend_spec)}
                for attachment in self._attachments],
            "next_index": {str(thread): count
                           for thread, count in self._next_index.items()},
            "evicted": {str(thread): count
                        for thread, count in self._evicted_per_thread.items()},
            "buffer": [format_event(event) for event in
                       (self._live_trace if self._live_trace is not None
                        else self._buffer)],
            "emitted": {attachment.name: sorted(attachment.emitted)
                        for attachment in self._attachments},
            "stats": self.stats.as_dict(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any],
                   *, on_finding: Optional[Callable[[StreamFinding], None]]
                   = None, policy=None) -> "StreamEngine":
        """Rebuild an engine from :meth:`state_dict` output.

        The window buffer is replayed through the normal ingestion path, so
        the live trace, the shared backbone order and every native
        analysis's state are reconstructed deterministically; the restored
        dedup keys suppress re-emission of findings already reported before
        the checkpoint.

        Each analysis is rebuilt from its registry name and the *backend*
        recorded per attachment.  Extra constructor keyword arguments of a
        hand-built analysis instance are not captured by a checkpoint --
        monitors that must survive restarts should attach analyses by name
        (as the ``watch`` CLI does).
        """
        from repro.errors import CheckpointError
        from repro.stream.checkpoint import CHECKPOINT_VERSION
        from repro.stream.window import parse_window
        from repro.trace.formats import parse_trace_line

        if state.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {state.get('version')!r}")
        window = parse_window(state["window"],
                              flush_every=state.get("flush_every"))
        engine = cls(
            analyses=[Analysis.by_name(item["name"])(item["backend"])
                      for item in state["analyses"]],
            backend=state.get("backend"),
            window=window,
            name=state.get("name", "stream"),
            backbone=state.get("backbone"),
            on_finding=on_finding,
            policy=policy,
        )
        for attachment in engine._attachments:
            attachment.emitted = set(
                state.get("emitted", {}).get(attachment.name, ()))
        evicted = {int(thread): count
                   for thread, count in state.get("evicted", {}).items()}
        engine._evicted_per_thread = dict(evicted)
        engine._next_index = dict(evicted)
        engine._cursor = state["cursor"]
        counters = dict(evicted)
        for line_number, line in enumerate(state.get("buffer", ()), start=1):
            event = parse_trace_line(line, counters, line_number)
            if event is not None:
                engine._ingest(event)
        expected = {int(thread): count
                    for thread, count in state.get("next_index", {}).items()}
        if engine._next_index != expected:
            raise CheckpointError(
                f"checkpoint buffer does not reproduce its per-thread "
                f"counters (got {engine._next_index}, expected {expected})")
        stats = state.get("stats", {})
        engine.stats.events = engine._cursor
        engine.stats.threads = len(engine._next_index)
        engine.stats.flushes = stats.get("flushes", 0)
        engine.stats.flush_errors = stats.get("flush_errors", 0)
        engine.stats.evicted = stats.get("evicted", 0)
        engine.stats.checkpoints = stats.get("checkpoints", 0)
        # Findings emitted before the checkpoint are represented by their
        # dedup keys; the emitted counter reflects the full history.
        engine.stats.emitted = stats.get("emitted", 0)
        return engine
