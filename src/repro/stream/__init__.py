"""Streaming analysis engine: online event ingestion over the dynamic
analyses.

The batch pipeline materializes a whole :class:`~repro.trace.Trace` before
``Analysis.run()`` starts; this package turns the same analyses into
*monitors* that consume events one at a time:

* :mod:`repro.stream.source` -- event sources (in-memory iterables, STD
  files with optional ``tail -f`` following, bounded push feeds with
  backpressure);
* :mod:`repro.stream.engine` -- :class:`StreamEngine`, which feeds events
  into N concurrently attached analyses, maintains the shared per-thread
  chains and a shared incremental-CSST sync order, and emits findings as
  they are discovered;
* :mod:`repro.stream.window` -- sliding/tumbling event windows bounding
  memory on unbounded feeds;
* :mod:`repro.stream.checkpoint` -- serialize/restore engine state so a
  monitor can resume after a restart.

The CLI front end is ``python -m repro watch``.
"""

from repro.stream.checkpoint import load_checkpoint, restore_engine, save_checkpoint
from repro.stream.engine import StreamEngine, StreamFinding, StreamResult, finding_key
from repro.stream.source import (
    EventSource,
    FeedSource,
    FileSource,
    GeneratorSource,
    IterableSource,
    TraceSource,
    open_source,
)
from repro.stream.window import (
    SlidingWindow,
    TumblingWindow,
    UnboundedWindow,
    Window,
    parse_window,
)

__all__ = [
    "EventSource",
    "FeedSource",
    "FileSource",
    "GeneratorSource",
    "IterableSource",
    "SlidingWindow",
    "StreamEngine",
    "StreamFinding",
    "StreamResult",
    "TraceSource",
    "TumblingWindow",
    "UnboundedWindow",
    "Window",
    "finding_key",
    "load_checkpoint",
    "open_source",
    "parse_window",
    "restore_engine",
    "save_checkpoint",
]
