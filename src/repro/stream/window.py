"""Event-count windows: when to flush, and what to keep afterwards.

A window policy answers two questions for the streaming engine:

* **boundary** -- after consuming the ``position``-th event (1-based), is it
  time to flush the attached analyses?
* **retain** -- after a flush, how many of the most recent events must stay
  buffered?

Three policies ship:

* :class:`UnboundedWindow` -- never evicts; flushes only where explicitly
  requested (``flush_every``) and at end of stream.  This is the *exact*
  mode: every flush sees the full history, so the final results are
  identical to a batch run.
* :class:`TumblingWindow` -- flush every ``size`` events, then drop the
  buffer.  Each window is analysed independently.
* :class:`SlidingWindow` -- flush every ``slide`` events over the last
  ``size`` events.  Consecutive windows overlap by ``size - slide`` events.

Bounded windows trade exactness for memory: an analysis only sees the
events still buffered, so findings whose evidence spans more than one
window are missed (and the engine deduplicates findings rediscovered by
overlapping windows).  Windows count *events*, not seconds -- the trace
model is an ordered event sequence, so event count is the reproducible
unit; a wall-clock flush policy can be layered on by the caller.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import StreamError


class Window:
    """Base window policy (see module docstring)."""

    #: Whether the policy ever evicts events (bounded memory).
    bounded: bool = False

    def boundary(self, position: int) -> bool:
        """Should the engine flush after the ``position``-th event (1-based)?"""
        raise NotImplementedError

    def retain(self) -> Optional[int]:
        """How many most-recent events to keep after a flush (``None`` =
        keep everything)."""
        raise NotImplementedError

    def spec(self) -> str:
        """The string form understood by :func:`parse_window`."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec()!r})"


class UnboundedWindow(Window):
    """Keep every event; flush only on demand.

    ``flush_every`` adds periodic flush boundaries (incremental emission)
    without evicting anything, so results stay batch-identical.
    """

    bounded = False

    def __init__(self, flush_every: Optional[int] = None) -> None:
        if flush_every is not None and flush_every < 1:
            raise StreamError(f"flush_every must be >= 1, got {flush_every}")
        self.flush_every = flush_every

    def boundary(self, position: int) -> bool:
        return (self.flush_every is not None
                and position % self.flush_every == 0)

    def retain(self) -> Optional[int]:
        return None

    def spec(self) -> str:
        return "none"


class TumblingWindow(Window):
    """Fixed-size non-overlapping windows: flush every ``size`` events and
    start over with an empty buffer."""

    bounded = True

    def __init__(self, size: int) -> None:
        if size < 1:
            raise StreamError(f"window size must be >= 1, got {size}")
        self.size = size

    def boundary(self, position: int) -> bool:
        return position % self.size == 0

    def retain(self) -> int:
        return 0

    def spec(self) -> str:
        return str(self.size)


class SlidingWindow(Window):
    """Overlapping windows: flush every ``slide`` events over the last
    ``size`` events."""

    bounded = True

    def __init__(self, size: int, slide: Optional[int] = None) -> None:
        if size < 1:
            raise StreamError(f"window size must be >= 1, got {size}")
        slide = slide if slide is not None else max(1, size // 2)
        if not 1 <= slide <= size:
            raise StreamError(
                f"slide must be in [1, size={size}], got {slide}")
        self.size = size
        self.slide = slide

    def boundary(self, position: int) -> bool:
        return position % self.slide == 0

    def retain(self) -> int:
        # Keep the part of the buffer the next window still covers.
        return self.size - self.slide

    def spec(self) -> str:
        return f"{self.size}/{self.slide}"


def parse_window(spec: Optional[str],
                 flush_every: Optional[int] = None) -> Window:
    """Parse a CLI/window spec string into a policy.

    ``None`` / ``"none"`` / ``"0"`` -> unbounded; ``"N"`` -> tumbling of
    size N; ``"N/M"`` -> sliding of size N, slide M.

    ``flush_every`` only combines with the unbounded window (bounded
    windows flush on their own boundaries); passing both is rejected
    rather than silently ignoring one.
    """
    if spec is None or spec in ("none", "0", ""):
        return UnboundedWindow(flush_every=flush_every)
    if flush_every is not None:
        raise StreamError(
            "flush_every only applies to the unbounded window; use a "
            "sliding window SIZE/SLIDE for periodic flushes with bounded "
            "memory")
    text = spec.strip()
    try:
        if "/" in text:
            size_text, slide_text = text.split("/", 1)
            return SlidingWindow(int(size_text), int(slide_text))
        return TumblingWindow(int(text))
    except ValueError:
        raise StreamError(
            f"cannot parse window spec {spec!r} (expected 'none', 'SIZE' "
            f"or 'SIZE/SLIDE')") from None
