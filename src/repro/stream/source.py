"""Event sources for the streaming engine.

A source is anything that yields :class:`~repro.trace.event.Event` objects
in observed (total) order, with per-thread indexes assigned consecutively
from 0 -- exactly the invariant :class:`~repro.trace.trace.Trace` enforces.
Sources support ``events(skip=N)`` so a restored monitor can resume mid-
stream: the source re-derives (or re-reads) the first ``N`` events to keep
index assignment identical, and yields only what comes after.

Four concrete sources ship:

* :class:`IterableSource` -- wraps any iterable (or a replayable factory);
* :class:`TraceSource` / :class:`GeneratorSource` -- in-memory traces,
  either pre-built or regenerated deterministically from a registered
  workload kind;
* :class:`FileSource` -- an STD-format file (optionally ``.gz``), read
  incrementally; with ``follow=True`` it keeps polling for appended lines,
  ``tail -f`` style;
* :class:`FeedSource` -- a thread-safe push queue with *bounded buffering*:
  producers block (backpressure) when the consumer falls behind.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, Optional, Union

from repro.errors import FeedCancelledError, StreamError
from repro.trace.event import Event, EventKind
from repro.trace.formats import open_trace, parse_header, parse_trace_line
from repro.trace.generators import GENERATOR_REGISTRY, build_trace
from repro.trace.trace import Trace


class EventSource:
    """Abstract event source (see module docstring)."""

    #: Human-readable stream name (used as the trace name in results).
    name: str = "stream"

    def events(self, skip: int = 0) -> Iterator[Event]:
        """Yield events in observed order, skipping the first ``skip``.

        Skipped events are still *processed* internally where index
        assignment requires it (e.g. file parsing), just not yielded.
        """
        raise NotImplementedError

    def __iter__(self) -> Iterator[Event]:
        return self.events()


class IterableSource(EventSource):
    """Source over an in-memory iterable of events.

    Pass a zero-argument callable returning a fresh iterator to make the
    source *replayable* (required when resuming from a checkpoint more than
    once); a plain iterable/iterator supports a single pass.
    """

    def __init__(self, events: Union[Iterable[Event], Callable[[], Iterable[Event]]],
                 name: str = "stream") -> None:
        self.name = name
        if callable(events):
            self._factory: Optional[Callable[[], Iterable[Event]]] = events
            self._iterable: Optional[Iterable[Event]] = None
        else:
            self._factory = None
            self._iterable = events

    def events(self, skip: int = 0) -> Iterator[Event]:
        if self._factory is not None:
            iterable: Iterable[Event] = self._factory()
        else:
            if self._iterable is None:
                raise StreamError(
                    f"source {self.name!r} is single-pass and already consumed")
            iterable, self._iterable = self._iterable, None
        for position, event in enumerate(iterable):
            if position >= skip:
                yield event


class TraceSource(EventSource):
    """Replay a pre-built trace as a stream."""

    def __init__(self, trace: Trace, name: Optional[str] = None) -> None:
        self._trace = trace
        self.name = name if name is not None else trace.name

    def events(self, skip: int = 0) -> Iterator[Event]:
        return self._trace.iter_from(skip)


class GeneratorSource(EventSource):
    """Regenerate a registered synthetic workload and stream it.

    The trace is deterministic given its parameters, so the source is
    replayable for free -- a restored monitor simply rebuilds it and skips.
    """

    def __init__(self, kind: str, threads: int = 4, events: int = 200,
                 seed: int = 0, **params) -> None:
        if kind not in GENERATOR_REGISTRY:
            known = ", ".join(sorted(GENERATOR_REGISTRY))
            raise StreamError(f"unknown trace kind {kind!r}; known: {known}")
        self.kind = kind
        self.threads = threads
        self.size = events
        self.seed = seed
        self.params = dict(params)
        self.name = f"{kind}-t{threads}-n{events}-s{seed}"
        self._trace: Optional[Trace] = None

    @classmethod
    def from_spec(cls, spec: str) -> "GeneratorSource":
        """Parse ``kind[:key=value,...]``, e.g. ``racy:threads=3,events=40``.

        Integer-looking values are converted; everything else stays a
        string.
        """
        kind, _, tail = spec.partition(":")
        params: Dict[str, object] = {}
        if tail:
            for item in tail.split(","):
                if not item.strip():
                    continue
                key, separator, value = item.partition("=")
                if not separator:
                    raise StreamError(
                        f"malformed generator parameter {item!r} in {spec!r}")
                key = key.strip()
                value = value.strip()
                try:
                    params[key] = int(value)
                except ValueError:
                    try:
                        params[key] = float(value)
                    except ValueError:
                        params[key] = value
        return cls(kind, **params)  # type: ignore[arg-type]

    def _materialize(self) -> Trace:
        if self._trace is None:
            try:
                self._trace = build_trace(self.kind,
                                          num_threads=self.threads,
                                          events=self.size, seed=self.seed,
                                          name=self.name, **self.params)
            except TypeError as error:
                # Bad parameter names/types from a CLI spec surface as the
                # library's error type, not a raw traceback.
                raise StreamError(
                    f"invalid generator parameters for {self.name!r}: "
                    f"{error}") from error
        return self._trace

    def events(self, skip: int = 0) -> Iterator[Event]:
        return self._materialize().iter_from(skip)


class FileSource(EventSource):
    """Stream events from an STD-format trace file (optionally ``.gz``).

    Parameters
    ----------
    path:
        The trace file.  ``.gz`` files are read transparently (but cannot
        be followed: gzip streams have no stable notion of "appended
        since").
    follow:
        Keep polling for appended lines once EOF is reached (``tail -f``).
        Partial lines (no trailing newline yet) are buffered until the
        writer completes them.
    poll_interval:
        Seconds between polls while following.
    idle_timeout:
        Stop following after this many seconds without new data
        (``None`` = follow forever).
    """

    def __init__(self, path: Union[str, Path], follow: bool = False,
                 poll_interval: float = 0.2,
                 idle_timeout: Optional[float] = None,
                 name: Optional[str] = None) -> None:
        self._path = Path(path)
        if follow and str(path).endswith(".gz"):
            raise StreamError("--follow is not supported for .gz traces")
        self.follow = follow
        self.poll_interval = poll_interval
        self.idle_timeout = idle_timeout
        self.name = name if name is not None else self._path.stem

    def events(self, skip: int = 0) -> Iterator[Event]:
        next_index: Dict[int, int] = {}
        seen = 0
        pending = ""
        line_number = 0
        last_data = time.monotonic()
        with open_trace(self._path, "r") as stream:
            while True:
                chunk = stream.readline()
                if chunk:
                    last_data = time.monotonic()
                    if self.follow and not chunk.endswith("\n"):
                        # The writer is mid-line; wait for the rest.
                        pending += chunk
                        continue
                    line, pending = pending + chunk, ""
                    line_number += 1
                    header = parse_header(line)
                    if header is not None:
                        self.name = header
                        continue
                    event = parse_trace_line(line, next_index, line_number)
                    if event is None:
                        continue
                    seen += 1
                    if seen > skip:
                        yield event
                    continue
                if not self.follow:
                    # pending is only populated while following (a final
                    # partial line is returned by readline and parsed
                    # through the normal path above).
                    return
                if (self.idle_timeout is not None
                        and time.monotonic() - last_data > self.idle_timeout):
                    # Treat a dangling partial line like the non-follow
                    # path does an unterminated final line: parse it.
                    if pending:
                        line_number += 1
                        event = parse_trace_line(pending, next_index,
                                                 line_number)
                        if event is not None:
                            seen += 1
                            if seen > skip:
                                yield event
                    return
                time.sleep(self.poll_interval)


class FeedSource(EventSource):
    """Thread-safe push feed with bounded buffering and backpressure.

    A producer thread calls :meth:`emit` (or :meth:`push` with pre-built
    events); the engine consumes via :meth:`events`.  When the internal
    buffer holds ``maxsize`` events, producers block until the consumer
    drains -- or raise :class:`~repro.errors.StreamError` once ``timeout``
    expires, so a stalled monitor surfaces as an error instead of unbounded
    memory growth.

    The consumer side can also go away: when the iterator returned by
    :meth:`events` is closed (explicitly, by ``break``-ing out of a ``for``
    loop and dropping it, or by engine shutdown) the feed is *cancelled* --
    every producer blocked in :meth:`push`/:meth:`emit` is unblocked with a
    typed :class:`~repro.errors.FeedCancelledError` instead of deadlocking
    against a consumer that will never drain again.  :meth:`cancel` does
    the same explicitly.
    """

    def __init__(self, maxsize: int = 1024, name: str = "feed") -> None:
        if maxsize < 1:
            raise StreamError(f"maxsize must be >= 1, got {maxsize}")
        self.name = name
        self._maxsize = maxsize
        self._buffer: deque = deque()
        self._condition = threading.Condition()
        self._closed = False
        self._cancelled = False
        self._next_index: Dict[int, int] = {}

    def _reserve_slot(self, timeout: Optional[float]) -> None:
        """Wait (holding the condition) until the buffer has room.

        Must be called with ``self._condition`` held; raises when the feed
        is closed or cancelled, or the backpressure timeout expires.
        """
        if self._cancelled:
            raise FeedCancelledError(
                f"feed {self.name!r}: consumer is gone (feed cancelled)")
        if self._closed:
            raise StreamError(f"feed {self.name!r} is closed")
        if not self._condition.wait_for(
                lambda: (len(self._buffer) < self._maxsize or self._closed
                         or self._cancelled),
                timeout=timeout):
            raise StreamError(
                f"feed {self.name!r}: backpressure timeout after "
                f"{timeout}s (buffer full at {self._maxsize})")
        if self._cancelled:
            raise FeedCancelledError(
                f"feed {self.name!r}: consumer is gone (feed cancelled)")
        if self._closed:
            raise StreamError(f"feed {self.name!r} is closed")

    def push(self, event: Event, timeout: Optional[float] = None) -> None:
        """Enqueue a pre-built event, blocking while the buffer is full."""
        with self._condition:
            self._reserve_slot(timeout)
            self._buffer.append(event)
            self._condition.notify_all()

    def emit(self, thread: int, kind: Union[EventKind, str],
             timeout: Optional[float] = None, **metadata) -> Event:
        """Build the next event of ``thread`` and enqueue it.

        The feed assigns per-thread sequence ids itself, so producers only
        name the thread and the operation.  Index assignment and enqueue
        happen in one critical section: two producers emitting for the
        same thread concurrently must not be able to enqueue their events
        out of index order.
        """
        kind = EventKind(kind) if not isinstance(kind, EventKind) else kind
        with self._condition:
            self._reserve_slot(timeout)
            index = self._next_index.get(thread, 0)
            self._next_index[thread] = index + 1
            event = Event(thread=thread, index=index, kind=kind, **metadata)
            self._buffer.append(event)
            self._condition.notify_all()
        return event

    def close(self) -> None:
        """Mark the feed finished; the consumer drains and stops."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def cancel(self) -> None:
        """Mark the consumer gone: unblock every pending/future producer
        with :class:`~repro.errors.FeedCancelledError` and stop the
        consumer iterator at the next opportunity.  Idempotent; buffered
        events are dropped (there is no one left to analyse them)."""
        with self._condition:
            self._cancelled = True
            self._buffer.clear()
            self._condition.notify_all()

    @property
    def cancelled(self) -> bool:
        with self._condition:
            return self._cancelled

    def __len__(self) -> int:
        with self._condition:
            return len(self._buffer)

    def events(self, skip: int = 0) -> Iterator[Event]:
        if skip:
            # A push feed carries *live* data: unlike files or generators,
            # there is no recorded prefix to re-derive, so "skipping" would
            # silently drop fresh events.  Resume a checkpointed monitor
            # from a replayable source instead.
            raise StreamError(
                f"feed {self.name!r} cannot skip {skip} events: a push "
                "feed has no replayable prefix")
        try:
            while True:
                with self._condition:
                    self._condition.wait_for(
                        lambda: (self._buffer or self._closed
                                 or self._cancelled))
                    if self._cancelled:
                        return
                    if not self._buffer and self._closed:
                        return
                    event = self._buffer.popleft()
                    self._condition.notify_all()
                yield event
        finally:
            # The consumer abandoned the iterator (GeneratorExit, an
            # exception in the engine, or plain exhaustion).  After a clean
            # close-and-drain cancelling is a no-op; in every other case it
            # is what turns "producer blocked forever against a dead
            # consumer" into a typed FeedCancelledError.
            with self._condition:
                if not (self._closed and not self._buffer):
                    self._cancelled = True
                    self._buffer.clear()
                self._condition.notify_all()


def _binary_trace_source(path: Union[str, Path], follow: bool,
                         name: Optional[str] = None) -> "TraceSource":
    """A replayable source over a ``.stc`` binary trace.

    The trace decodes lazily (columns only; events inflate as the engine
    consumes them).  Following is refused like ``.gz``: a binary columnar
    file has no notion of "lines appended since".
    """
    if follow:
        raise StreamError("--follow is not supported for .stc traces")
    from repro.trace.io import read_trace

    return TraceSource(read_trace(path), name=name)


def open_source(spec: str, follow: bool = False,
                poll_interval: float = 0.2,
                idle_timeout: Optional[float] = None) -> EventSource:
    """Resolve a CLI ``--source`` value into a source.

    An existing file path becomes a :class:`FileSource` for STD text
    (``.std`` / ``.std.gz``) or a replayable :class:`TraceSource` over a
    lazily decoded trace for ``.stc`` binary (sniffed by magic bytes, then
    extension); a corpus manifest (``manifest.json`` or
    ``manifest.json#TRACE_ID``, see :mod:`repro.gen.corpus`) resolves to a
    source over the named member (first member by default); otherwise the
    value is parsed as a generator spec ``kind[:key=value,...]`` (e.g.
    ``racy:threads=3,events=60,seed=1``).
    """
    from repro.trace.io import trace_format

    manifest_path = spec.partition("#")[0]
    if manifest_path.endswith(".json") and os.path.isfile(manifest_path):
        from repro.errors import GenerationError
        from repro.gen.corpus import read_manifest, resolve_member

        try:
            manifest = read_manifest(manifest_path)
        except GenerationError as error:  # manifest-shaped, bad version
            raise StreamError(str(error)) from error
        if manifest is not None:
            try:
                member_path, member_name = resolve_member(spec, manifest)
            except GenerationError as error:
                raise StreamError(str(error)) from error
            if trace_format(member_path) == "stc":
                return _binary_trace_source(member_path, follow,
                                            name=member_name)
            return FileSource(member_path, follow=follow,
                              poll_interval=poll_interval,
                              idle_timeout=idle_timeout, name=member_name)
    if os.path.exists(spec):
        if trace_format(spec) == "stc":
            return _binary_trace_source(spec, follow)
        return FileSource(spec, follow=follow, poll_interval=poll_interval,
                          idle_timeout=idle_timeout)
    kind = spec.partition(":")[0]
    if kind in GENERATOR_REGISTRY:
        if follow:
            raise StreamError("--follow only applies to file sources")
        return GeneratorSource.from_spec(spec)
    raise StreamError(
        f"source {spec!r} is neither an existing trace file nor a "
        f"registered trace kind (known kinds: "
        f"{', '.join(sorted(GENERATOR_REGISTRY))})")
