"""Thread-safe, zero-dependency metrics: counters, gauges, histograms,
spans, and the process-wide *active registry*.

Design constraints (see ``docs/observability.md``):

* **Off by default, provably near-zero cost when off.**  The module-level
  :data:`ACTIVE` registry is ``None`` until something installs one;
  instrumented hot paths bind their instruments once at construction time
  and guard the per-event work with a single ``is None`` check -- no dict
  lookups, no allocation, no call into this module per event while
  telemetry is disabled.  The :data:`NULL_REGISTRY` fallback hands out
  shared no-op singletons whose methods allocate nothing, so code that
  *does* call through unconditionally still pays only a no-op method call.
* **Thread-safe.**  Instrument creation and every update happen under a
  lock (one per registry, shared by its instruments); concurrent ``inc``
  from N threads never loses a count.
* **JSON-able snapshots.**  :meth:`MetricsRegistry.snapshot` returns one
  plain-dict document carrying every instrument plus the recorded span
  trees; the sinks (:mod:`repro.obs.sinks`) serialize that document, they
  never reach into instruments.

Histogram timers use the monotonic ``time.perf_counter_ns`` clock and
observe seconds (floats) into **fixed** bucket boundaries -- buckets are
chosen at creation and never rebalance, so merged/longitudinal snapshots
stay comparable.
"""

from __future__ import annotations

import bisect
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.spans import Span, SpanStack

#: Snapshot document format version.
SNAPSHOT_VERSION = 1

#: Default histogram bucket upper bounds, in seconds: wide enough for a
#: microsecond-scale kernel op and a minutes-scale sweep in one scheme.
#: The implicit final bucket is +Inf.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Finished root spans kept per registry (oldest dropped first).
MAX_RECORDED_SPANS = 256

#: ``(key, value)`` label pairs, sorted -- the hashable instrument key part.
Labels = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# --------------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------------- #
class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Labels,
                 lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        with self._lock:
            self._value += amount

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self._value}


class Gauge:
    """A value that goes up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Labels,
                 lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self._value}


class Histogram:
    """Observations bucketed by fixed upper bounds (plus +Inf).

    ``counts[i]`` is the number of observations ``<= bounds[i]``
    (*non*-cumulative per bucket; the Prometheus renderer accumulates).
    ``time()`` returns a context manager that observes the wall-clock
    seconds of its body, measured with ``perf_counter_ns``.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_sum",
                 "_count")

    def __init__(self, name: str, labels: Labels, lock: threading.Lock,
                 bounds: Tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds) \
                or len(set(bounds)) != len(bounds):
            raise ObservabilityError(
                f"histogram {name!r} bucket bounds must be a non-empty "
                f"strictly increasing sequence, got {bounds!r}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(bound) for bound in bounds)
        self._lock = lock
        self._counts = [0] * (len(bounds) + 1)  # final slot: > last bound
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self) -> "_Timer":
        return _Timer(self)

    def absorb(self, counts: List[int], total: float, count: int) -> None:
        """Merge another histogram's per-bucket counts into this one.

        Used by :func:`repro.obs.context.merge_snapshot` to fold worker
        snapshots into the collector's registry; the caller is responsible
        for matching bounds (the registry's get-or-create already rejects
        a bounds conflict for the same instrument identity).
        """
        if len(counts) != len(self._counts):
            raise ObservabilityError(
                f"histogram {self.name!r} cannot absorb {len(counts)} "
                f"buckets into {len(self._counts)}")
        with self._lock:
            for index, value in enumerate(counts):
                self._counts[index] += value
            self._sum += total
            self._count += count

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels),
                "bounds": list(self.bounds), "counts": list(self._counts),
                "sum": self._sum, "count": self._count}


class _Timer:
    """Context manager observing its body's duration into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._histogram.observe(
            (time.perf_counter_ns() - self._start) / 1e9)
        return False


# --------------------------------------------------------------------------- #
# No-op twins (shared singletons; methods must never allocate)
# --------------------------------------------------------------------------- #
class NullCounter:
    kind = "counter"
    __slots__ = ()
    name = ""
    labels: Labels = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class NullGauge:
    kind = "gauge"
    __slots__ = ()
    name = ""
    labels: Labels = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullContext:
    """Reusable no-op context manager (``span``/``time`` when disabled)."""

    __slots__ = ()
    name = ""
    labels: Dict[str, str] = {}
    start_ns = 0
    duration_ns = 0
    duration_seconds = 0.0
    children: Tuple = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {"name": "", "labels": {}, "start_ns": 0, "duration_ns": 0}


class NullHistogram:
    kind = "histogram"
    __slots__ = ()
    name = ""
    labels: Labels = ()
    bounds: Tuple[float, ...] = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullContext":
        return NULL_CONTEXT


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
NULL_CONTEXT = _NullContext()


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class MetricsRegistry:
    """Get-or-create home of every instrument, plus the span recorder.

    Instruments are identified by ``(name, sorted labels)``; asking twice
    returns the *same* object, so hot paths can bind instruments once and
    skip the lookup forever after.  Re-using a name with a different
    instrument type (or different histogram bounds) is an
    :class:`~repro.errors.ObservabilityError` -- silent type morphing
    would corrupt every sink downstream.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Labels], Any] = {}
        self._spans: List[Dict[str, Any]] = []
        self._span_stack = SpanStack(self._record_root, self._record_finish)
        self._span_seconds_lock = threading.Lock()

    # -- instrument factories ------------------------------------------- #
    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, _label_key(labels))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, _label_key(labels))

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: Any) -> Histogram:
        bounds = tuple(buckets) if buckets is not None \
            else DEFAULT_TIME_BUCKETS
        return self._get(Histogram, name, _label_key(labels), bounds)

    def _get(self, cls, name: str, labels: Labels, *extra) -> Any:
        key = (name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, labels, self._lock, *extra)
                self._instruments[key] = instrument
                return instrument
        if type(instrument) is not cls:
            raise ObservabilityError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, requested {cls.kind}")
        if extra and instrument.bounds != tuple(
                float(bound) for bound in extra[0]):
            raise ObservabilityError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}, requested {extra[0]}")
        return instrument

    # -- spans ----------------------------------------------------------- #
    def span(self, name: str, **labels: Any) -> Span:
        """A new span nesting under the thread's current span (if any)."""
        return Span(name, {str(k): str(v) for k, v in labels.items()},
                    self._span_stack)

    def current_span(self) -> Optional[Span]:
        return self._span_stack.current()

    def _record_finish(self, span: Span) -> None:
        # Label key "name" collides with the positional parameter of
        # ``histogram`` -- go through ``_get`` directly.
        self._get(Histogram, "span_seconds",
                  _label_key({"name": span.name}), DEFAULT_TIME_BUCKETS) \
            .observe(span.duration_seconds)

    def _record_root(self, span: Span) -> None:
        # Root spans are stamped with their clock domain: ``start_ns``
        # values are per-process ``perf_counter_ns`` readings, so the
        # wall-clock anchor (derived at record time, when the duration is
        # known) is what lets trees from different processes land on one
        # timeline (see repro.obs.export).
        document = span.to_dict()
        document["pid"] = os.getpid()
        document["tid"] = threading.get_ident()
        document["wall_start_ns"] = time.time_ns() - span.duration_ns
        self.record_span_document(document)

    def record_span_document(self, document: Dict[str, Any]) -> None:
        """Append one finished span *tree* (a JSON-able dict) to the
        bounded root-span log.  This is how snapshots merged from other
        processes -- and synthetic spans for work that never ran, e.g.
        timed-out sweep jobs -- enter the log; live spans go through the
        span stack and arrive here via :meth:`_record_root`."""
        with self._span_seconds_lock:
            self._spans.append(document)
            if len(self._spans) > MAX_RECORDED_SPANS:
                del self._spans[0]

    @property
    def spans(self) -> List[Dict[str, Any]]:
        """Finished root-span trees, oldest first (bounded log)."""
        with self._span_seconds_lock:
            return list(self._spans)

    # -- export ---------------------------------------------------------- #
    def instruments(self) -> Iterator[Any]:
        with self._lock:
            items = list(self._instruments.items())
        for (_, _), instrument in sorted(
                items, key=lambda item: (item[0][0], item[0][1])):
            yield instrument

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-able document: every instrument plus the span log.

        ``ts_ns`` stamps the snapshot with ``time.time_ns`` (wall clock,
        for humans/sinks); instrument values themselves are cumulative
        since registry creation.
        """
        counters, gauges, histograms = [], [], []
        for instrument in self.instruments():
            if instrument.kind == "counter":
                counters.append(instrument.describe())
            elif instrument.kind == "gauge":
                gauges.append(instrument.describe())
            else:
                histograms.append(instrument.describe())
        return {
            "version": SNAPSHOT_VERSION,
            "ts_ns": time.time_ns(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": self.spans,
        }


class NullRegistry(MetricsRegistry):
    """The disabled registry: hands out shared no-op singletons.

    There is one process-wide instance, :data:`NULL_REGISTRY`; comparing
    ``registry.enabled`` (or binding instruments and checking ``is
    NULL_COUNTER``) is how call sites stay allocation-free when telemetry
    is off.
    """

    enabled = False

    def __init__(self) -> None:  # no lock, no storage
        pass

    def counter(self, name: str, **labels: Any) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, buckets=None, **labels: Any
                  ) -> NullHistogram:
        return NULL_HISTOGRAM

    def span(self, name: str, **labels: Any) -> _NullContext:
        return NULL_CONTEXT

    def current_span(self) -> None:
        return None

    def record_span_document(self, document: Dict[str, Any]) -> None:
        pass

    @property
    def spans(self) -> List[Dict[str, Any]]:
        return []

    def instruments(self) -> Iterator[Any]:
        return iter(())

    def snapshot(self) -> Dict[str, Any]:
        return {"version": SNAPSHOT_VERSION, "ts_ns": time.time_ns(),
                "counters": [], "gauges": [], "histograms": [], "spans": []}


NULL_REGISTRY = NullRegistry()

# --------------------------------------------------------------------------- #
# The process-wide active registry
# --------------------------------------------------------------------------- #
#: ``None`` means telemetry is disabled.  Hot paths read this module
#: attribute directly (``metrics.ACTIVE``) and guard on ``is None`` --
#: that single check is the entire disabled-mode cost.
ACTIVE: Optional[MetricsRegistry] = None

_ACTIVE_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The active registry, or :data:`NULL_REGISTRY` when disabled."""
    registry = ACTIVE
    return registry if registry is not None else NULL_REGISTRY


def set_registry(registry: Optional[MetricsRegistry]
                 ) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the process-wide active registry
    (``None`` disables telemetry).  Returns the previous value."""
    global ACTIVE
    with _ACTIVE_LOCK:
        previous = ACTIVE
        ACTIVE = registry if registry is not NULL_REGISTRY else None
    return previous


class use_registry:
    """Context manager installing a registry for the duration of a block::

        with use_registry(MetricsRegistry()) as registry:
            session.analyze(config)
        print(registry.snapshot())
    """

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self._registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self._registry)
        return self._registry if self._registry is not None \
            else NULL_REGISTRY

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_registry(self._previous)
        return False


# --------------------------------------------------------------------------- #
# Metric catalogue
# --------------------------------------------------------------------------- #
#: Every metric name the instrumented library emits, with type and
#: meaning.  ``Session.capabilities()`` exposes this so external tooling
#: can discover the telemetry surface without running a workload.
METRIC_CATALOG: Dict[str, Dict[str, str]] = {
    "stream_events_total": {
        "type": "counter",
        "help": "events ingested by a StreamEngine"},
    "stream_flushes_total": {
        "type": "counter", "help": "window/flush-point evaluations"},
    "stream_flush_errors_total": {
        "type": "counter", "help": "per-analysis flush failures"},
    "stream_findings_total": {
        "type": "counter",
        "help": "findings emitted (exactly-once, labelled by analysis)"},
    "stream_evicted_total": {
        "type": "counter", "help": "events evicted by bounded windows"},
    "stream_buffered_events": {
        "type": "gauge", "help": "events currently retained by the engine"},
    "stream_feed_seconds": {
        "type": "histogram",
        "help": "per-event feed latency of streaming-native analyses "
                "(labelled by analysis)"},
    "stream_flush_seconds": {
        "type": "histogram",
        "help": "per-flush evaluation time (labelled by analysis)"},
    "checkpoint_total": {
        "type": "counter", "help": "engine checkpoints saved"},
    "checkpoint_bytes": {
        "type": "gauge", "help": "size of the last checkpoint written"},
    "checkpoint_seconds": {
        "type": "histogram", "help": "checkpoint serialization+write time"},
    "sweep_jobs_total": {
        "type": "counter", "help": "sweep jobs collected (labelled by "
                                   "status: ok/error/timeout)"},
    "sweep_job_timeout_total": {
        "type": "counter",
        "help": "sweep jobs abandoned by the collector's per-job timeout "
                "(each also leaves a synthetic error-status span)"},
    "sweep_job_seconds": {
        "type": "histogram",
        "help": "per-job analysis wall time (labelled analysis, backend)"},
    "sweep_queue_wait_seconds": {
        "type": "histogram",
        "help": "collector wait per job: submit-to-result latency of the "
                "worker pool"},
    "trace_loads_total": {
        "type": "counter", "help": "traces loaded (labelled by format)"},
    "trace_parse_seconds": {
        "type": "histogram",
        "help": "trace load/parse duration (labelled by format)"},
    "trace_parse_bytes_total": {
        "type": "counter",
        "help": "on-disk bytes of loaded traces (labelled by format)"},
    "trace_writes_total": {
        "type": "counter", "help": "traces written (labelled by format)"},
    "stc_hydrations_total": {
        "type": "counter",
        "help": "Event objects inflated on demand from lazy .stc traces"},
    "analysis_run_seconds": {
        "type": "histogram",
        "help": "whole-analysis batch run time (labelled analysis, "
                "backend)"},
    "analysis_findings_total": {
        "type": "counter",
        "help": "findings produced by batch analysis runs (labelled by "
                "analysis)"},
    "po_ops_total": {
        "type": "counter",
        "help": "partial-order operations issued via InstrumentedOrder "
                "(labelled op: insert/delete/query, and analysis)"},
    "span_seconds": {
        "type": "histogram",
        "help": "duration of every finished span (labelled by span name)"},
    "tune_pick_total": {
        "type": "counter",
        "help": "auto-backend selections made by a tuning policy "
                "(labelled backend, policy)"},
    "tune_regret_seconds": {
        "type": "gauge",
        "help": "total policy regret vs the per-job optimum of the last "
                "oracle sweep"},
    "serve_events_total": {
        "type": "counter",
        "help": "events consumed by the serve workers (labelled by "
                "tenant)"},
    "serve_tenants_total": {
        "type": "counter",
        "help": "tenant sessions admitted by the service"},
    "serve_tenant_lag_seconds": {
        "type": "gauge",
        "help": "ingest-to-consume lag of each tenant's most recent "
                "event (labelled by tenant)"},
    "serve_worker_respawn_total": {
        "type": "counter",
        "help": "crashed worker processes respawned by the supervisor "
                "(labelled by worker slot)"},
    "serve_quota_rejected_total": {
        "type": "counter",
        "help": "events rejected by per-tenant quotas (labelled by "
                "tenant)"},
    "serve_backpressure_waits_total": {
        "type": "counter",
        "help": "bounded-queue put timeouts on the ingest path -- each is "
                "~200ms of pushback on the feeding client (labelled by "
                "worker slot)"},
}
