"""``repro.obs`` -- zero-dependency telemetry for the repro library.

Three layers:

* :mod:`repro.obs.metrics` -- thread-safe counters/gauges/histograms and
  nested timing spans in a :class:`MetricsRegistry`; the module-level
  *active registry* (``None`` by default) is what instrumented hot paths
  consult, so telemetry is off until :func:`set_registry` /
  :func:`use_registry` installs one.
* :mod:`repro.obs.sinks` -- snapshot consumers: in-memory, JSON-lines
  files, Prometheus text exposition, and the ``repro stats`` table.
* :mod:`repro.obs.context` / :mod:`repro.obs.export` -- cross-process
  trace propagation (id minting, worker-snapshot merging) and the Chrome
  trace-event / Perfetto timeline exporter.
* :mod:`repro.obs.trend` -- the longitudinal perf dashboard over
  accumulated ``BENCH_*.json`` documents.

The full metric catalogue lives in :data:`METRIC_CATALOG` and is exposed
through ``Session.capabilities()["observability"]``.
"""

from repro.obs.context import (
    merge_snapshot,
    new_span_id,
    new_trace_id,
)
from repro.obs.export import (
    CHROME_REQUIRED_KEYS,
    METRICS_LANE_PID,
    render_chrome_json,
    render_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    METRIC_CATALOG,
    MAX_RECORDED_SPANS,
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_CONTEXT,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.sinks import (
    SINK_KINDS,
    JsonlSink,
    MemorySink,
    load_snapshot,
    read_snapshots,
    render_prom,
    render_stats_table,
)
from repro.obs.spans import Span, SpanStack
from repro.obs.trend import (
    build_trend,
    collect_runs,
    render_markdown,
    write_trend,
)

__all__ = [
    "merge_snapshot",
    "new_span_id",
    "new_trace_id",
    "CHROME_REQUIRED_KEYS",
    "METRICS_LANE_PID",
    "render_chrome_json",
    "render_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "DEFAULT_TIME_BUCKETS",
    "METRIC_CATALOG",
    "MAX_RECORDED_SPANS",
    "SNAPSHOT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_CONTEXT",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "SINK_KINDS",
    "JsonlSink",
    "MemorySink",
    "load_snapshot",
    "read_snapshots",
    "render_prom",
    "render_stats_table",
    "Span",
    "SpanStack",
    "build_trend",
    "collect_runs",
    "render_markdown",
    "write_trend",
]
