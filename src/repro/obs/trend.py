"""Longitudinal perf trend reports over accumulated ``BENCH_*.json`` files.

Every ``repro bench perf`` run writes a dated document
(``BENCH_<date>[-N].json``) and the repo commits a two-mode
``BENCH_baseline.json``; this module renders that history as one
per-case trend report -- seconds per run, latest-over-baseline deltas,
and the machine-independent speedup ratios -- as markdown plus JSON,
conventionally into ``docs/tables/``.

Runs are compared strictly like-with-like: quick-mode documents trend
against the baseline's quick section, full-mode against full.  The
report is a pure function of the input documents (no timestamps are
injected), so regenerating it from unchanged inputs is byte-identical --
CI can diff it as an artifact.
"""

from __future__ import annotations

import glob
import json
import os
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ObservabilityError

TREND_VERSION = 1

#: Baseline document filename (matches ``repro.bench.perf``).
BASELINE_FILENAME = "BENCH_baseline.json"

#: Run label of the committed baseline columns.
BASELINE_LABEL = "baseline"

#: Latest/baseline ratio above which a case is flagged as a regression
#: in the markdown rendering (mirrors the bench harness default).
REGRESSION_RATIO = 2.0


#: Dated run label, optionally with the same-day ``-N`` dedupe suffix
#: the bench harness appends (``2026-08-01``, ``2026-08-01-1``, ...).
_DATED_LABEL = re.compile(r"^(\d{4}-\d{2}-\d{2})(?:-(\d+))?$")


def _run_order(path: str) -> Tuple[str, int, str]:
    """Chronological sort key for a dated ``BENCH_*.json`` path.

    Plain string order puts ``BENCH_<date>-1.json`` *before*
    ``BENCH_<date>.json`` (``-`` sorts before ``.``), so dedupe-suffixed
    same-day reruns would jump ahead of their base run; this key orders
    by date, then dedupe suffix numerically.
    """
    label = os.path.basename(path)[len("BENCH_"):-len(".json")]
    match = _DATED_LABEL.match(label)
    if match:
        return (match.group(1), int(match.group(2) or 0), label)
    return (label, 0, label)


def _load(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as stream:
            document = json.load(stream)
    except ValueError as error:
        raise ObservabilityError(f"{path}: not valid JSON: {error}") \
            from None
    if not isinstance(document, dict):
        raise ObservabilityError(f"{path}: not a perf document")
    return document


def collect_runs(directory: Union[str, Path]
                 ) -> Dict[str, List[Dict[str, Any]]]:
    """Every perf run in ``directory``, grouped by mode, baseline first.

    The baseline document contributes one run per mode section; dated
    documents (``BENCH_*.json``, anything that is not the baseline)
    contribute to the mode they ran in, ordered chronologically -- by
    date, with same-day ``-N`` dedupe suffixes after their base run.
    A ``BENCH_*.json`` that is not a perf document (no ``results``
    section) is an error, not silently skipped.
    """
    directory = str(directory)
    runs: Dict[str, List[Dict[str, Any]]] = {}

    def add(mode: str, label: str, path: str,
            document: Dict[str, Any]) -> None:
        results = document.get("results")
        if not isinstance(results, dict):
            raise ObservabilityError(
                f"{path}: perf document has no 'results' section")
        runs.setdefault(mode, []).append({
            "label": label,
            "path": os.path.basename(path),
            "python": document.get("python"),
            "repeats": document.get("repeats"),
            "results": results,
            "speedups": document.get("speedups", {}),
        })

    baseline_path = os.path.join(directory, BASELINE_FILENAME)
    if os.path.exists(baseline_path):
        baseline = _load(baseline_path)
        modes = baseline.get("modes")
        if not isinstance(modes, dict) or not modes:
            raise ObservabilityError(
                f"{baseline_path}: baseline document has no 'modes' "
                f"sections")
        for mode in sorted(modes):
            add(mode, BASELINE_LABEL, baseline_path, modes[mode])

    pattern = os.path.join(directory, "BENCH_*.json")
    for path in sorted(glob.glob(pattern), key=_run_order):
        if os.path.basename(path) == BASELINE_FILENAME:
            continue
        document = _load(path)
        label = os.path.basename(path)[len("BENCH_"):-len(".json")]
        add(str(document.get("mode", "full")), label, path, document)

    if not runs:
        raise ObservabilityError(
            f"no BENCH_*.json perf documents found in {directory!r}")
    return runs


def build_trend(runs: Dict[str, List[Dict[str, Any]]]) -> Dict[str, Any]:
    """The trend document: per mode, per case, seconds across runs plus
    latest-over-baseline deltas (and the speedup-label trends)."""
    modes: Dict[str, Any] = {}
    for mode, entries in sorted(runs.items()):
        case_names: List[str] = []
        for entry in entries:
            for name in entry["results"]:
                if name not in case_names:
                    case_names.append(name)
        cases: Dict[str, Any] = {}
        for name in case_names:
            seconds: List[Optional[float]] = []
            for entry in entries:
                record = entry["results"].get(name)
                seconds.append(float(record["seconds"])
                               if record is not None else None)
            baseline_seconds = (seconds[0]
                                if entries[0]["label"] == BASELINE_LABEL
                                else None)
            latest = next((value for value in reversed(seconds)
                           if value is not None), None)
            delta = (latest / baseline_seconds
                     if latest is not None and baseline_seconds else None)
            cases[name] = {
                "seconds": seconds,
                "baseline_seconds": baseline_seconds,
                "latest_seconds": latest,
                "delta_vs_baseline": delta,
            }
        speedup_labels: List[str] = []
        for entry in entries:
            for label in entry["speedups"]:
                if label not in speedup_labels:
                    speedup_labels.append(label)
        speedups = {
            label: [entry["speedups"].get(label) for entry in entries]
            for label in speedup_labels
        }
        modes[mode] = {
            "runs": [{key: entry[key]
                      for key in ("label", "path", "python", "repeats")}
                     for entry in entries],
            "cases": cases,
            "speedups": speedups,
        }
    return {"version": TREND_VERSION, "modes": modes}


def _cell(value: Optional[float]) -> str:
    return f"{value:.4f}" if value is not None else "-"


def _delta_cell(delta: Optional[float]) -> str:
    if delta is None:
        return "-"
    marker = ""
    if delta > REGRESSION_RATIO:
        marker = " (regression)"
    elif delta <= 0.5:
        marker = " (speedup)"
    return f"{delta:.2f}x{marker}"


def render_markdown(document: Dict[str, Any]) -> str:
    """The trend document as a markdown report (one section per mode)."""
    lines: List[str] = ["# Perf trend report", ""]
    lines.append("Seconds per case across recorded `BENCH_*.json` runs "
                 "(min-of-N); `delta` is latest/baseline -- above "
                 f"{REGRESSION_RATIO:.1f}x flags a regression, at or "
                 "below 0.5x a speedup.")
    for mode, section in sorted(document["modes"].items()):
        labels = [run["label"] for run in section["runs"]]
        lines.append("")
        lines.append(f"## mode: {mode}")
        lines.append("")
        sources = ", ".join(f"`{run['path']}`" for run in section["runs"])
        lines.append(f"Runs: {sources}")
        lines.append("")
        header = ["case"] + labels + ["delta"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join([" --- "] * len(header)) + "|")
        for name, case in section["cases"].items():
            row = [name]
            row += [_cell(value) for value in case["seconds"]]
            row.append(_delta_cell(case["delta_vs_baseline"]))
            lines.append("| " + " | ".join(row) + " |")
        if section["speedups"]:
            lines.append("")
            lines.append(f"### speedup ratios ({mode})")
            lines.append("")
            header = ["pair"] + labels
            lines.append("| " + " | ".join(header) + " |")
            lines.append("|" + "|".join([" --- "] * len(header)) + "|")
            for label, values in section["speedups"].items():
                row = [label] + [f"{value:.2f}x" if value is not None
                                 else "-" for value in values]
                lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines) + "\n"


def write_trend(directory: Union[str, Path],
                out_dir: Union[str, Path],
                basename: str = "perf_trend"
                ) -> Tuple[Dict[str, Any], str, str]:
    """Collect, build, and write the trend report.

    Returns ``(document, markdown_path, json_path)``.  ``out_dir`` is
    created when missing; the JSON twin carries exactly the document the
    markdown was rendered from.
    """
    document = build_trend(collect_runs(directory))
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    markdown_path = out / f"{basename}.md"
    json_path = out / f"{basename}.json"
    with open(markdown_path, "w", encoding="utf-8") as stream:
        stream.write(render_markdown(document))
    with open(json_path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return document, str(markdown_path), str(json_path)
