"""Nested timing spans.

A *span* is one named, labelled stretch of wall-clock time; spans opened
while another span is active on the same thread nest under it, so a
finished root span is a tree describing where a workflow spent its time::

    with registry.span("analyze") as root:
        with registry.span("load", format="stc"):
            ...
        with registry.span("run", analysis="race-prediction"):
            ...
    root.duration_ns          # total
    root.children[0].name     # "load"

Timing uses the monotonic ``time.perf_counter_ns`` clock; ``start_ns``
values are therefore only comparable within one process.  Each thread
keeps its own span stack (a ``threading.local``), so concurrent threads
build independent trees -- a span never adopts a child from another
thread.

Spans are recorded by the :class:`~repro.obs.metrics.MetricsRegistry`
that created them: finished *root* spans land on the registry's bounded
span log, and every finished span also feeds the ``span_seconds``
histogram labelled with the span name, so span timings show up in plain
metric snapshots (and Prometheus exposition) without walking trees.

A span that exits with an exception records ``status="error"`` and the
exception type name; snapshot dicts only carry the keys when set, so
clean spans serialize exactly as before.  A span's children may also be
plain *dicts* -- finished span trees grafted from another process'
snapshot (see :mod:`repro.obs.context`) -- and ``to_dict`` passes those
through verbatim.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Union

__all__ = ["STATUS_ERROR", "STATUS_OK", "Span", "SpanStack"]

#: Span completion status values (mirrors the sweep-record vocabulary).
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One timed region.  Created via ``MetricsRegistry.span`` -- not by
    hand -- and used as a context manager (re-entry is not supported)."""

    __slots__ = ("name", "labels", "start_ns", "duration_ns", "children",
                 "status", "error_type", "_stack")

    def __init__(self, name: str, labels: Dict[str, str],
                 stack: Optional["SpanStack"]) -> None:
        self.name = name
        self.labels = labels
        self.start_ns: int = 0
        self.duration_ns: int = 0
        self.children: List[Union["Span", Dict[str, Any]]] = []
        self.status: str = STATUS_OK
        self.error_type: Optional[str] = None
        self._stack = stack

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def __enter__(self) -> "Span":
        if self._stack is not None:
            self._stack.push(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ns = time.perf_counter_ns() - self.start_ns
        if exc_type is not None:
            self.status = STATUS_ERROR
            self.error_type = exc_type.__name__
        if self._stack is not None:
            self._stack.pop(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able span tree (the form stored in metric snapshots).

        ``status``/``error_type`` appear only for failed spans, so clean
        trees keep their compact pre-status shape.  Dict children (span
        trees merged in from another process) pass through as-is.
        """
        out: Dict[str, Any] = {
            "name": self.name,
            "labels": dict(self.labels),
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }
        if self.status != STATUS_OK:
            out["status"] = self.status
            if self.error_type is not None:
                out["error_type"] = self.error_type
        if self.children:
            out["children"] = [child.to_dict() if isinstance(child, Span)
                               else child for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, {self.duration_ns}ns, "
                f"{len(self.children)} children)")


class SpanStack:
    """Per-thread span nesting state shared by one registry.

    ``push`` links a new span under the thread's current span (if any) and
    makes it current; ``pop`` restores the parent and hands finished roots
    to ``on_root`` (the registry's recording hook).
    """

    def __init__(self, on_root, on_finish) -> None:
        self._local = threading.local()
        self._on_root = on_root
        self._on_finish = on_finish

    def _frames(self) -> List[Span]:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = []
            self._local.frames = frames
        return frames

    def current(self) -> Optional[Span]:
        frames = self._frames()
        return frames[-1] if frames else None

    def push(self, span: Span) -> None:
        frames = self._frames()
        if frames:
            frames[-1].children.append(span)
        frames.append(span)

    def pop(self, span: Span) -> None:
        frames = self._frames()
        # Tolerate exits out of order (a span leaked across a generator
        # boundary): unwind to the span being closed rather than corrupting
        # the stack for the rest of the thread's lifetime.  Every unwound
        # intermediate still gets the finish hook -- it never ran
        # ``__exit__``, so its duration is stamped here; dropping it
        # silently would make its time vanish from ``span_seconds``.
        while frames:
            top = frames.pop()
            if top is span:
                break
            top.duration_ns = time.perf_counter_ns() - top.start_ns
            self._on_finish(top)
        self._on_finish(span)
        if not frames:
            self._on_root(span)
