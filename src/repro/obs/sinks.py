"""Metric snapshot sinks and renderers.

A *snapshot* is the JSON-able document produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`.  Sinks consume
snapshots; they never touch live instruments, so any sink can be pointed
at any registry (or at a snapshot read back from disk).

Three sink kinds (``SINK_KINDS``):

* **memory** -- :class:`MemorySink` keeps snapshots in a list (tests,
  embedders polling ``latest``).
* **jsonl** -- :class:`JsonlSink` appends one compact JSON document per
  line to a file.  Append-only and line-framed, so a live monitor can be
  tailed and a crashed run never corrupts earlier lines; ``repro stats``
  reads the last (or any) line back.
* **prom** -- :func:`render_prom` renders a snapshot as Prometheus text
  exposition (version 0.0.4): ``# TYPE`` comments, label sets, histogram
  ``_bucket``/``_sum``/``_count`` series with cumulative ``le`` buckets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ObservabilityError

#: Sink kinds advertised through ``Session.capabilities()``.
SINK_KINDS = ("memory", "jsonl", "prom")


class MemorySink:
    """Keep every emitted snapshot in memory."""

    def __init__(self) -> None:
        self.snapshots: List[Dict[str, Any]] = []

    @property
    def latest(self) -> Optional[Dict[str, Any]]:
        return self.snapshots[-1] if self.snapshots else None

    def emit(self, snapshot: Dict[str, Any]) -> None:
        self.snapshots.append(snapshot)


class JsonlSink:
    """Append snapshots to ``path``, one JSON document per line."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def emit(self, snapshot: Dict[str, Any]) -> None:
        line = json.dumps(snapshot, sort_keys=True,
                          separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(line + "\n")


def read_snapshots(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every snapshot in a JSON-lines metrics file (or a single-document
    JSON file), oldest first.

    Raises :class:`~repro.errors.ObservabilityError` on malformed lines
    or documents that are not snapshots.
    """
    with open(path, "r", encoding="utf-8") as stream:
        text = stream.read()
    snapshots: List[Dict[str, Any]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            document = json.loads(line)
        except ValueError as error:
            raise ObservabilityError(
                f"{path}:{number}: not valid JSON: {error}") from None
        if not isinstance(document, dict) or "counters" not in document:
            raise ObservabilityError(
                f"{path}:{number}: not a metrics snapshot (no 'counters' "
                f"section)")
        snapshots.append(document)
    if not snapshots:
        raise ObservabilityError(f"{path}: no metric snapshots found")
    return snapshots


def load_snapshot(path: Union[str, Path],
                  index: int = -1) -> Dict[str, Any]:
    """One snapshot from a metrics file (default: the latest line)."""
    snapshots = read_snapshots(path)
    try:
        return snapshots[index]
    except IndexError:
        raise ObservabilityError(
            f"{path}: snapshot index {index} out of range "
            f"({len(snapshots)} snapshots)") from None


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #
def _prom_labels(labels: Dict[str, str], extra: Optional[str] = None) -> str:
    parts = [f'{key}="{_prom_escape(value)}"'
             for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_escape(value: Any) -> str:
    return str(value).replace("\\", r"\\").replace('"', r'\"') \
        .replace("\n", r"\n")


def _prom_name(name: str) -> str:
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return out if not out[:1].isdigit() else "_" + out


def _prom_float(value: float) -> str:
    # Render integral floats as integers: canonical and diff-friendly.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prom(snapshot: Dict[str, Any]) -> str:
    """Prometheus text exposition of one snapshot (trailing newline
    included, as the format requires)."""
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def type_line(name: str, kind: str) -> None:
        seen = typed.get(name)
        if seen is None:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        elif seen != kind:  # pragma: no cover - registry forbids this
            raise ObservabilityError(
                f"metric {name!r} rendered as both {seen} and {kind}")

    for entry in snapshot.get("counters", ()):
        name = _prom_name(entry["name"])
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(entry.get('labels', {}))} "
                     f"{_prom_float(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        name = _prom_name(entry["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry.get('labels', {}))} "
                     f"{_prom_float(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = _prom_name(entry["name"])
        type_line(name, "histogram")
        labels = entry.get("labels", {})
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            le = 'le="' + _prom_float(bound) + '"'
            lines.append(f"{name}_bucket{_prom_labels(labels, le)} "
                         f"{cumulative}")
        cumulative += entry["counts"][len(entry["bounds"])]
        inf_le = 'le="+Inf"'
        lines.append(f"{name}_bucket{_prom_labels(labels, inf_le)} "
                     f"{cumulative}")
        lines.append(f"{name}_sum{_prom_labels(labels)} "
                     f"{_prom_float(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} "
                     f"{entry['count']}")
    return "\n".join(lines) + "\n" if lines else ""


# --------------------------------------------------------------------------- #
# Human rendering (``repro stats`` table form)
# --------------------------------------------------------------------------- #
def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}"
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def render_stats_table(snapshot: Dict[str, Any]) -> str:
    """Plain-text table of one snapshot: counters and gauges as
    ``name value`` rows, histograms as count/sum/mean rows, then a span
    summary (roots with total duration)."""
    lines: List[str] = []
    rows = []
    for entry in snapshot.get("counters", ()):
        rows.append((entry["name"] + _format_labels(entry.get("labels", {})),
                     "counter", _prom_float(entry["value"])))
    for entry in snapshot.get("gauges", ()):
        rows.append((entry["name"] + _format_labels(entry.get("labels", {})),
                     "gauge", _prom_float(entry["value"])))
    for entry in snapshot.get("histograms", ()):
        count = entry["count"]
        mean = entry["sum"] / count if count else 0.0
        rows.append((entry["name"] + _format_labels(entry.get("labels", {})),
                     "histogram",
                     f"count={count} sum={entry['sum']:.6f} "
                     f"mean={mean:.6f}"))
    if rows:
        width = max(len(row[0]) for row in rows)
        lines.append(f"{'metric':{width}s} {'type':9s} value")
        for name, kind, value in rows:
            lines.append(f"{name:{width}s} {kind:9s} {value}")
    else:
        lines.append("no metrics recorded")
    spans = snapshot.get("spans", ())
    if spans:
        lines.append("")
        lines.append("spans:")
        for span in spans:
            lines.append(_render_span(span, depth=1))
    return "\n".join(lines)


def _render_span(span: Dict[str, Any], depth: int) -> str:
    labels = _format_labels(span.get("labels", {}))
    line = (f"{'  ' * depth}{span['name']}{labels}: "
            f"{span.get('duration_ns', 0) / 1e9:.6f}s")
    if span.get("status", "ok") != "ok":
        line += f" [{span.get('error_type') or span['status']}]"
    children = span.get("children", ())
    if children:
        line += "\n" + "\n".join(_render_span(child, depth + 1)
                                 for child in children)
    return line
