"""Timeline export: metric snapshots rendered as Chrome trace-event JSON.

:func:`render_chrome_trace` turns one snapshot document (from
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`, possibly merged
across processes) into the Chrome trace-event format -- the
``{"traceEvents": [...]}`` JSON that both ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_ open directly:

* every finished span becomes a complete (``ph="X"``) event with
  microsecond ``ts``/``dur``, laid out in per-``pid``/per-``tid`` lanes;
* error-status spans are flagged (``cname="terrible"`` colors them red
  in chrome://tracing; ``args.status``/``args.error_type`` carry the
  diagnostic either way);
* counters become counter (``ph="C"``) events stamped at snapshot time,
  on a dedicated pseudo-process lane (pid ``0``, named ``metrics``);
* metadata (``ph="M"``) events name each process lane.

**Clock domains.**  Span ``start_ns`` values are per-process
``perf_counter_ns`` readings; only a node carrying an explicit
``wall_start_ns`` anchor (stamped on every root at record time) maps its
subtree onto the shared wall-clock axis.  Children are placed relative
to their parent via perf offsets -- exact within one process -- while a
grafted child with its own anchor (a worker's span tree merged under the
collector's sweep span) opens a new clock domain with its own
``pid``/``tid`` lane.  Cross-process placement is therefore as accurate
as the hosts' wall clocks; on one machine that is sub-millisecond, ample
for sweep timelines.

Rendering is deterministic: events are stably sorted and the canonical
text form (:func:`render_chrome_json`) serializes with sorted keys, so
the same snapshot always produces byte-identical output -- ``repro
timeline run.jsonl`` reproduces the file ``--timeline`` wrote.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

__all__ = [
    "CHROME_REQUIRED_KEYS",
    "METRICS_LANE_PID",
    "render_chrome_trace",
    "render_chrome_json",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Keys every trace event must carry (the schema the CI smoke validates).
CHROME_REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")

#: Pseudo-pid of the counter lane (no real process has pid 0).
METRICS_LANE_PID = 0


def _format_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}"
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _span_events(node: Dict[str, Any], events: List[Dict[str, Any]],
                 pid: int, tid: int,
                 wall_anchor_ns: int, perf_anchor_ns: int) -> None:
    """Emit one span subtree.  ``wall_anchor_ns`` is the wall-clock time
    corresponding to the ``perf_counter_ns`` reading ``perf_anchor_ns``
    in this subtree's process; a node with its own ``wall_start_ns``
    opens a new clock domain (and lane) for itself and its children."""
    if "wall_start_ns" in node:
        pid = node.get("pid", pid)
        tid = node.get("tid", tid)
        wall_anchor_ns = node["wall_start_ns"]
        perf_anchor_ns = node.get("start_ns", 0)
    start_wall_ns = wall_anchor_ns + (node.get("start_ns", 0)
                                      - perf_anchor_ns)
    event: Dict[str, Any] = {
        "ph": "X",
        "cat": "span",
        "name": node.get("name", ""),
        "ts": start_wall_ns // 1000,
        "dur": node.get("duration_ns", 0) // 1000,
        "pid": pid,
        "tid": tid,
    }
    args = dict(node.get("labels", {}))
    status = node.get("status", "ok")
    if status != "ok":
        event["cname"] = "terrible"  # chrome://tracing renders this red
        args["status"] = status
        if node.get("error_type"):
            args["error_type"] = node["error_type"]
    if args:
        event["args"] = args
    events.append(event)
    for child in node.get("children", ()):
        _span_events(child, events, pid, tid,
                     wall_anchor_ns, perf_anchor_ns)


def render_chrome_trace(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """One snapshot as a Chrome trace-event document (a plain dict)."""
    events: List[Dict[str, Any]] = []
    snapshot_ts_ns = snapshot.get("ts_ns", 0)

    for root in snapshot.get("spans", ()):
        # Roots recorded before anchoring existed fall back to "ended at
        # snapshot time" -- approximate, but still a renderable lane.
        fallback = snapshot_ts_ns - root.get("duration_ns", 0)
        _span_events(root, events,
                     root.get("pid", METRICS_LANE_PID),
                     root.get("tid", 0),
                     root.get("wall_start_ns", fallback),
                     root.get("start_ns", 0))

    counter_ts = snapshot_ts_ns // 1000
    for entry in snapshot.get("counters", ()):
        events.append({
            "ph": "C",
            "name": entry["name"] + _format_labels(entry.get("labels", {})),
            "ts": counter_ts,
            "pid": METRICS_LANE_PID,
            "tid": 0,
            "args": {"value": entry.get("value", 0)},
        })

    pids = sorted({event["pid"] for event in events})
    for pid in pids:
        events.append({
            "ph": "M",
            "name": "process_name",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": "metrics" if pid == METRICS_LANE_PID
                     else f"process {pid}"},
        })

    # Stable lane-major order; within a lane, metadata (ts 0) leads and
    # longer spans precede the children they enclose at the same tick.
    events.sort(key=lambda event: (
        event["pid"], event["tid"], event["ts"], -event.get("dur", 0),
        event["ph"], event["name"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_chrome_json(snapshot: Dict[str, Any]) -> str:
    """The canonical text form of :func:`render_chrome_trace` (sorted
    keys, compact separators) -- byte-identical for equal snapshots."""
    return json.dumps(render_chrome_trace(snapshot), sort_keys=True,
                      separators=(",", ":"))


def write_chrome_trace(snapshot: Dict[str, Any],
                       path: Union[str, Path]) -> None:
    """Write the canonical Chrome trace JSON for ``snapshot`` to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(render_chrome_json(snapshot) + "\n")


def validate_chrome_trace(document: Any) -> List[str]:
    """Schema problems of a trace-event document (empty list: valid).

    Checks the containment shape, the required keys of every event
    (:data:`CHROME_REQUIRED_KEYS`, plus ``dur`` on complete events),
    numeric non-negative timestamps, and that ``ts`` is monotonically
    non-decreasing within each ``(pid, tid)`` lane -- the properties the
    CI ``timeline-smoke`` job asserts on emitted files.
    """
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents array"]
    problems: List[str] = []
    last_ts: Dict[Any, Any] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        missing = [key for key in CHROME_REQUIRED_KEYS if key not in event]
        if missing:
            problems.append(f"event {index}: missing keys {missing}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index}: ts must be a non-negative "
                            f"number, got {ts!r}")
            continue
        if event["ph"] == "X" and "dur" not in event:
            problems.append(f"event {index}: complete event without dur")
        lane = (event["pid"], event["tid"])
        if lane in last_ts and ts < last_ts[lane]:
            problems.append(f"event {index}: ts {ts} goes backwards in "
                            f"lane pid={lane[0]} tid={lane[1]} "
                            f"(previous {last_ts[lane]})")
        last_ts[lane] = ts
    return problems
