"""Cross-process trace context: id minting and snapshot merging.

``repro.obs`` registries are in-process objects; a sweep that fans jobs
out over a :class:`~concurrent.futures.ProcessPoolExecutor` therefore
needs an explicit propagation step or the workers' telemetry is lost.
This module is that step, in three parts:

* **Context minting** -- the collector mints one run-wide ``trace_id``
  plus a ``span_id`` per job (:func:`new_trace_id` /
  :func:`new_span_id`) and ships them inside the pickled
  :class:`~repro.runner.executor.SweepJob`.  A job carrying a trace id
  is the worker's signal to capture telemetry even though no registry is
  installed in its process.
* **Worker capture** -- the worker runs the job on a fresh, job-local
  :class:`~repro.obs.metrics.MetricsRegistry` installed as the active
  registry, so every instrumented layer underneath (trace I/O, analysis
  runs, partial-order op counts) records into it.  Because the registry
  is born empty, its snapshot *is* the job's metric delta; the root span
  is stamped with ``pid``/``tid``/``wall_start_ns`` at record time (see
  ``MetricsRegistry._record_root``), which is what makes span trees from
  different processes comparable -- ``perf_counter_ns`` readings are not.
* **Collector merge** -- :func:`merge_snapshot` folds a worker snapshot
  back into the collector's live registry: counters add, gauges last-
  write-wins, histograms merge bucket-by-bucket (bounds are fixed at
  creation, so merged snapshots stay comparable), and the worker's
  finished span trees are grafted as children of the collector's open
  sweep span.  Inline (``workers=1``) and pooled sweeps thus produce
  equivalent merged snapshots -- the parity the tests pin.
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, Optional

from repro.obs.metrics import Histogram, MetricsRegistry, _label_key
from repro.obs.spans import Span

__all__ = ["new_trace_id", "new_span_id", "merge_snapshot"]


def new_trace_id() -> str:
    """A fresh 32-hex-digit run identifier."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-digit span identifier."""
    return uuid.uuid4().hex[:16]


def merge_snapshot(registry: MetricsRegistry,
                   snapshot: Dict[str, Any],
                   parent_span: Optional[Span] = None) -> None:
    """Fold one serialized snapshot into a live registry.

    ``snapshot`` is the document produced by
    :meth:`MetricsRegistry.snapshot` in another process (typically read
    off a :class:`~repro.runner.results.SweepRecord`); it may have been
    through a JSON round-trip.  Merge semantics per instrument kind:

    * counters: values add (counters are cumulative deltas of the
      worker-local registry, which was born empty);
    * gauges: last write wins, matching live gauge semantics;
    * histograms: per-bucket counts, sum, and count add.  The worker and
      collector share the fixed default bounds; a genuinely conflicting
      bounds set raises through the registry's usual conflict error.

    Finished span trees are grafted under ``parent_span`` when one is
    given (the collector's open sweep span), otherwise appended to the
    registry's root-span log directly.  Grafted trees keep their
    ``pid``/``tid``/``wall_start_ns`` stamps -- each opens its own clock
    domain in the timeline export.
    """
    for entry in snapshot.get("counters", ()):
        # inc(0) still materializes the metric: a counter a worker touched
        # without ticking must exist in the merged snapshot too, or inline
        # and pooled sweeps would disagree about the metric set.
        registry.counter(entry["name"], **entry.get("labels", {})) \
            .inc(entry.get("value", 0))
    for entry in snapshot.get("gauges", ()):
        registry.gauge(entry["name"], **entry.get("labels", {})) \
            .set(entry.get("value", 0.0))
    for entry in snapshot.get("histograms", ()):
        histogram = registry._get(
            Histogram, entry["name"], _label_key(entry.get("labels", {})),
            tuple(entry["bounds"]))
        histogram.absorb(entry["counts"], entry["sum"], entry["count"])
    for span_document in snapshot.get("spans", ()):
        if parent_span is not None:
            parent_span.children.append(span_document)
        else:
            registry.record_span_document(span_document)
