"""Differential fuzzer: backend-pair and streaming/batch parity hunting.

``repro fuzz`` closes the loop between generation and the subsystem's two
equivalence contracts:

* **backend parity** -- every partial-order backend applicable to an
  analysis must produce the same findings on the same trace (object vs
  flat, incremental CSSTs vs segment trees vs vector clocks, graphs vs
  CSSTs for the deletion-based analyses);
* **streaming/batch parity** -- the :class:`~repro.stream.engine.
  StreamEngine`'s final flush must equal a batch ``Analysis.run()``;
* **format parity** -- the default backend must produce the same
  findings on the in-memory trace and on its ``.stc`` binary round trip
  (``decode_trace(encode_trace(trace))``, analysed lazily).

Each fuzz case deterministically derives a workload (kind round-robin
over the unified generator registry, shape sampled per case, schedulers
cycled for scenario kinds), runs every applicable comparison, and records
a :class:`Divergence` whenever two sides disagree.  Divergences are
*delta-debugged*: :func:`minimize_trace` shrinks the trace with a ddmin
pass over event subsets (rebuilding per-thread indexes after each cut)
plus a whole-thread elimination pre-pass, and the minimal counterexample
is written to disk as a plain ``.std`` file next to a JSON report -- the
artifact CI uploads on failure.

Findings are compared order-insensitively by their string forms: backends
may legitimately enumerate the same finding set in different orders.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analyses.common.base import Analysis
from repro.errors import FuzzError, ReproError
from repro.gen.schedulers import DEFAULT_SCHEDULER_CYCLE
from repro.runner.corpus import TraceSpec
from repro.trace.formats import dump_trace
from repro.trace.generators import GENERATOR_REGISTRY
from repro.trace.trace import Trace

#: Shape bounds per mode: (threads low/high, events low/high).
QUICK_SHAPE = ((2, 3), (16, 36))
FULL_SHAPE = ((2, 5), (30, 90))
#: Linearizability explodes with history length; cap its sizes hard.
HISTORY_SHAPE = ((2, 3), (4, 8))


def normalize_findings(findings: Sequence[object]) -> List[str]:
    """Order-insensitive comparison form of an analysis finding list."""
    return sorted(str(finding) for finding in findings)


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic fuzz input: an indexed trace recipe.

    The recipe is a runner :class:`~repro.runner.corpus.TraceSpec`, so the
    id format and the build path are shared with sweeps and corpora --
    fuzz counterexample ids always cross-reference their output exactly.
    """

    index: int
    spec: TraceSpec

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def threads(self) -> int:
        return self.spec.threads

    @property
    def events(self) -> int:
        return self.spec.events

    @property
    def seed(self) -> int:
        return self.spec.seed

    @property
    def params(self) -> Tuple[Tuple[str, object], ...]:
        return self.spec.params

    @property
    def case_id(self) -> str:
        return f"fuzz{self.index:04d}-{self.spec.trace_id}"

    def build(self) -> Trace:
        return self.spec.build()


@dataclass
class Divergence:
    """One parity violation: two sides disagree on a trace."""

    case: FuzzCase
    analysis: str
    left: str  #: reference side label (backend name or 'batch')
    right: str  #: diverging side label (backend name or 'stream')
    left_findings: List[str]
    right_findings: List[str]
    error: Optional[str] = None  #: set when one side raised instead
    minimized_events: Optional[int] = None
    counterexample: Optional[str] = None  #: path of the minimized trace

    def describe(self) -> str:
        if self.error:
            detail = f"error: {self.error}"
        else:
            only_left = [f for f in self.left_findings
                         if f not in self.right_findings]
            only_right = [f for f in self.right_findings
                          if f not in self.left_findings]
            detail = (f"{len(self.left_findings)} vs "
                      f"{len(self.right_findings)} findings "
                      f"(+{len(only_left)}/-{len(only_right)})")
        where = f" -> {self.counterexample}" if self.counterexample else ""
        return (f"{self.case.case_id} {self.analysis} "
                f"[{self.left} vs {self.right}]: {detail}{where}")


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    cases: int = 0
    comparisons: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    per_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        lines = [f"fuzz: {self.cases} cases, {self.comparisons} comparisons, "
                 f"{len(self.divergences)} divergence(s)"]
        kinds = ", ".join(f"{kind}:{count}"
                          for kind, count in sorted(self.per_kind.items()))
        if kinds:
            lines.append(f"  kinds: {kinds}")
        for divergence in self.divergences:
            lines.append(f"  DIVERGENCE {divergence.describe()}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Case planning
# --------------------------------------------------------------------------- #
def plan_cases(seeds: int, kinds: Optional[Sequence[str]] = None,
               quick: bool = False, base_seed: int = 0) -> List[FuzzCase]:
    """Derive the deterministic case list for a fuzz run.

    ``seeds`` counts cases; kinds rotate round-robin so every workload
    family gets near-equal budget.  Shapes are sampled per case from an
    integer-seeded rng (no string hashing), so the plan is identical
    across processes and machines.
    """
    if seeds < 1:
        raise FuzzError(f"fuzz needs seeds >= 1, got {seeds}")
    if kinds:
        unknown = sorted(set(kinds) - set(GENERATOR_REGISTRY))
        if unknown:
            known = ", ".join(sorted(GENERATOR_REGISTRY))
            raise FuzzError(f"unknown kinds in fuzz request: {unknown}; "
                            f"known: {known}")
        selected = list(kinds)
    else:
        selected = [kind for kind, entry in GENERATOR_REGISTRY.items()
                    if entry.analyses]
    cases: List[FuzzCase] = []
    for index in range(seeds):
        kind = selected[index % len(selected)]
        entry = GENERATOR_REGISTRY[kind]
        shape = HISTORY_SHAPE if kind == "history" else (
            QUICK_SHAPE if quick else FULL_SHAPE)
        rng = random.Random((base_seed * 2_000_003 + index * 127)
                            ^ zlib.crc32(kind.encode()))
        (t_low, t_high), (n_low, n_high) = shape
        params: Tuple[Tuple[str, object], ...] = ()
        if entry.source == "scenario":
            # Cycle schedulers by *per-kind occurrence* (index // kinds):
            # indexing by the global case index would pin each kind to one
            # scheduler forever whenever the kind count is a multiple of
            # the cycle length.
            scheduler = DEFAULT_SCHEDULER_CYCLE[
                (index // len(selected)) % len(DEFAULT_SCHEDULER_CYCLE)]
            params = (("scheduler", scheduler),)
        cases.append(FuzzCase(index=index, spec=TraceSpec(
            kind=kind,
            threads=rng.randint(t_low, t_high),
            events=rng.randint(n_low, n_high),
            seed=base_seed * 10_000 + index,
            params=params,
        )))
    return cases


# --------------------------------------------------------------------------- #
# Comparisons
# --------------------------------------------------------------------------- #
def _run_findings(analysis: str, backend: str, trace: Trace) -> List[str]:
    return normalize_findings(
        Analysis.by_name(analysis)(backend).run(trace).findings)


def _stc_round_trip(trace: Trace) -> Trace:
    """The trace after a ``.stc`` encode/decode cycle, still lazy."""
    from repro.trace.binfmt import decode_trace, encode_trace

    return decode_trace(encode_trace(trace), name=trace.name)


def _stream_findings(analyses: Sequence[str], trace: Trace
                     ) -> Dict[str, List[str]]:
    """Final streaming findings per analysis, from ONE engine pass.

    The engine attaches N analyses over shared incremental indexes, so
    every analysis of a case shares a single trace replay instead of
    paying one full pass each.
    """
    from repro.stream.engine import StreamEngine
    from repro.stream.source import TraceSource

    engine = StreamEngine(list(analyses))
    result = engine.run(TraceSource(trace))
    return {analysis: normalize_findings(res.findings)
            for analysis, res in result.results.items()}


def comparison_plan(kind: str,
                    backends: Optional[Sequence[str]] = None,
                    stream: bool = True
                    ) -> List[Tuple[str, str, str]]:
    """(analysis, left, right) comparisons for one workload kind.

    ``left`` is always the analysis's default backend (the reference);
    ``right`` is every *other* applicable backend, plus ``"stream"`` for
    the streaming/batch comparison and ``"stc"`` for the binary-format
    round-trip comparison.
    """
    plans: List[Tuple[str, str, str]] = []
    entry = GENERATOR_REGISTRY.get(kind)
    if entry is None or not entry.analyses:
        return plans
    for analysis in entry.analyses:
        cls = Analysis.by_name(analysis)
        reference = cls.default_backend()
        applicable = [b for b in cls.applicable_backends()
                      if backends is None or b in backends or b == reference]
        for backend in applicable:
            if backend != reference:
                plans.append((analysis, reference, backend))
        if stream:
            plans.append((analysis, reference, "stream"))
        plans.append((analysis, reference, "stc"))
    return plans


def compare_case(case: FuzzCase, trace: Trace,
                 backends: Optional[Sequence[str]] = None,
                 stream: bool = True) -> Tuple[int, List[Divergence]]:
    """Run every comparison for one case; returns (count, divergences)."""
    divergences: List[Divergence] = []
    comparisons = 0
    reference_cache: Dict[Tuple[str, str], List[str]] = {}
    plans = comparison_plan(case.kind, backends, stream)
    # One engine pass serves every streaming comparison of the case.
    stream_analyses = [analysis for analysis, _l, right in plans
                       if right == "stream"]
    stream_results: Dict[str, List[str]] = {}
    stream_error: Optional[str] = None
    if stream_analyses:
        try:
            stream_results = _stream_findings(stream_analyses, trace)
        except ReproError as error:
            stream_error = f"{type(error).__name__}: {error}"
    # One binary round trip serves every "stc" comparison of the case.
    stc_trace: Optional[Trace] = None
    stc_error: Optional[str] = None
    if any(right == "stc" for _a, _l, right in plans):
        try:
            stc_trace = _stc_round_trip(trace)
        except ReproError as error:
            stc_error = f"{type(error).__name__}: {error}"
    for analysis, left, right in plans:
        comparisons += 1
        try:
            key = (analysis, left)
            if key not in reference_cache:
                reference_cache[key] = _run_findings(analysis, left, trace)
            left_findings = reference_cache[key]
            if right == "stream":
                if stream_error is not None:
                    divergences.append(Divergence(
                        case=case, analysis=analysis, left=left, right=right,
                        left_findings=[], right_findings=[],
                        error=stream_error))
                    continue
                right_findings = stream_results[analysis]
            elif right == "stc":
                if stc_error is not None:
                    divergences.append(Divergence(
                        case=case, analysis=analysis, left=left, right=right,
                        left_findings=[], right_findings=[],
                        error=stc_error))
                    continue
                right_findings = _run_findings(analysis, left, stc_trace)
            else:
                right_findings = _run_findings(analysis, right, trace)
        except ReproError as error:
            divergences.append(Divergence(
                case=case, analysis=analysis, left=left, right=right,
                left_findings=[], right_findings=[],
                error=f"{type(error).__name__}: {error}"))
            continue
        if left_findings != right_findings:
            divergences.append(Divergence(
                case=case, analysis=analysis, left=left, right=right,
                left_findings=left_findings, right_findings=right_findings))
    return comparisons, divergences


# --------------------------------------------------------------------------- #
# Delta debugging
# --------------------------------------------------------------------------- #
def rebuild_trace(events: Sequence[object], name: str) -> Trace:
    """Rebuild a valid trace from an event subset.

    Per-thread indexes are reassigned consecutively (the subset keeps each
    thread's relative order), so any cut of the event list is again a
    well-formed trace.
    """
    trace = Trace(name=name)
    for event in events:
        trace.append(event.thread, event.kind, variable=event.variable,
                     value=event.value, target=event.target,
                     memory_order=event.memory_order,
                     operation=event.operation, argument=event.argument,
                     result=event.result, atomic=event.atomic)
    return trace


def minimize_trace(trace: Trace, predicate: Callable[[Trace], bool],
                   max_checks: int = 400) -> Trace:
    """Shrink ``trace`` to a small subset on which ``predicate`` holds.

    ``predicate`` must hold on the input trace.  A whole-thread
    elimination pre-pass removes entire chains, then a ddmin loop cuts
    complement chunks at halving granularity.  ``max_checks`` bounds the
    number of predicate evaluations (each one typically re-runs two
    analyses), so minimization cost stays predictable.
    """
    events = list(trace)
    name = f"{trace.name}-min"
    checks = [0]

    def holds(subset: Sequence[object]) -> bool:
        if not subset or checks[0] >= max_checks:
            return False
        checks[0] += 1
        try:
            return bool(predicate(rebuild_trace(subset, name)))
        except ReproError:
            # The cut produced a trace the analyses reject (e.g. an END
            # without its BEGIN); treat as not reproducing.
            return False

    if not holds(events):
        raise FuzzError("minimize_trace: predicate does not hold on the "
                        "input trace")

    # Whole-thread elimination first: the cheapest big cuts.
    changed = True
    while changed and checks[0] < max_checks:
        changed = False
        for thread in sorted({event.thread for event in events}):
            candidate = [e for e in events if e.thread != thread]
            if candidate and holds(candidate):
                events = candidate
                changed = True
                break

    # ddmin over complements with halving granularity.
    granularity = 2
    while len(events) >= 2 and checks[0] < max_checks:
        chunk = max(1, len(events) // granularity)
        reduced = False
        position = 0
        while position < len(events):
            candidate = events[:position] + events[position + chunk:]
            if candidate and holds(candidate):
                events = candidate
                reduced = True
                # Stay at the same position: the next chunk shifted in.
            else:
                position += chunk
            if checks[0] >= max_checks:
                break
        if reduced:
            granularity = max(granularity - 1, 2)
        elif granularity >= len(events):
            break
        else:
            granularity = min(len(events), granularity * 2)
    return rebuild_trace(events, name)


def _divergence_predicate(divergence: Divergence
                          ) -> Callable[[Trace], bool]:
    """Does the same (analysis, left, right) pair still disagree?"""
    analysis, left, right = (divergence.analysis, divergence.left,
                             divergence.right)

    def predicate(trace: Trace) -> bool:
        left_findings = _run_findings(analysis, left, trace)
        if right == "stream":
            right_findings = _stream_findings([analysis], trace)[analysis]
        elif right == "stc":
            right_findings = _run_findings(analysis, left,
                                           _stc_round_trip(trace))
        else:
            right_findings = _run_findings(analysis, right, trace)
        return left_findings != right_findings

    return predicate


def minimize_divergence(divergence: Divergence, out_dir: Union[str, Path],
                        max_checks: int = 400) -> Divergence:
    """Delta-debug one divergence and write the counterexample to disk.

    The minimized trace lands in ``out_dir`` as ``<case>-<analysis>-
    <pair>.std`` with a sibling ``.json`` report (case recipe, pair, both
    finding lists).  Error-divergences (one side raised) are written
    un-minimized: the failing input itself is the artifact.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = (f"{divergence.case.case_id}-{divergence.analysis}"
            f"-{divergence.left}-vs-{divergence.right}")
    trace = divergence.case.build()
    if divergence.error is None:
        try:
            trace = minimize_trace(trace, _divergence_predicate(divergence),
                                   max_checks=max_checks)
        except FuzzError:
            # Flaky divergence (did not reproduce on rebuild): keep the
            # original trace as the artifact.
            pass
    trace_path = out / f"{stem}.std"
    dump_trace(trace, trace_path)
    report = {
        "case": {
            "kind": divergence.case.kind,
            "threads": divergence.case.threads,
            "events": divergence.case.events,
            "seed": divergence.case.seed,
            "params": dict(divergence.case.params),
        },
        "analysis": divergence.analysis,
        "left": divergence.left,
        "right": divergence.right,
        "error": divergence.error,
        "left_findings": divergence.left_findings,
        "right_findings": divergence.right_findings,
        "minimized_events": len(trace),
        "trace": trace_path.name,
    }
    with open(out / f"{stem}.json", "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    divergence.minimized_events = len(trace)
    divergence.counterexample = str(trace_path)
    return divergence


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
def run_fuzz(seeds: int = 50, quick: bool = False,
             kinds: Optional[Sequence[str]] = None,
             backends: Optional[Sequence[str]] = None,
             stream: bool = True, base_seed: int = 0,
             out_dir: Union[str, Path] = "fuzz-out",
             minimize: bool = True, max_checks: int = 400,
             on_case: Optional[Callable[[FuzzCase], None]] = None
             ) -> FuzzReport:
    """Run the differential fuzzer (see module docstring).

    ``on_case`` is a progress hook called before each case (the CLI's
    verbose mode).  Counterexamples are only written when divergences
    occur; a clean run leaves ``out_dir`` untouched.
    """
    if backends is not None:
        from repro.core import BACKENDS

        unknown = sorted(set(backends) - set(BACKENDS))
        if unknown:
            known = ", ".join(sorted(BACKENDS))
            raise FuzzError(f"unknown backends in fuzz request: {unknown}; "
                            f"known: {known}")
    report = FuzzReport()
    for case in plan_cases(seeds, kinds=kinds, quick=quick,
                           base_seed=base_seed):
        if on_case is not None:
            on_case(case)
        trace = case.build()
        comparisons, divergences = compare_case(case, trace,
                                                backends=backends,
                                                stream=stream)
        report.cases += 1
        report.comparisons += comparisons
        report.per_kind[case.kind] = report.per_kind.get(case.kind, 0) + 1
        for divergence in divergences:
            if minimize:
                divergence = minimize_divergence(divergence, out_dir,
                                                 max_checks=max_checks)
            report.divergences.append(divergence)
    return report
