"""Named parameter distributions for scenario-program generation.

The LITMUS-RT workload generator declares its task-set parameters as *named
distributions* ("uniform light utilizations", "moderate periods", ...) and
expands one configuration into a whole family of task sets.  This module is
the same idea for concurrency scenarios: every knob of a scenario family
(thread count, contention, read/write ratio, lock-nesting depth,
reuse-after-free probability, ...) is a :class:`Distribution` that can be

* written as a compact spec string (``"uniform:2,8"``, ``"choice:a,b,c"``,
  ``"zipf:1.2,16"``) in CLI flags and JSON corpus configs, and
* sampled deterministically from a seeded :class:`random.Random`, so one
  config plus one seed always fans out into the same corpus.

A :class:`Space` is a named mapping of distributions -- the declared
parameter space of a scenario family.  ``Space.sample(rng)`` draws one
concrete parameter assignment; overriding individual names with constants
(or other distributions) narrows the space without touching the family.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import GenerationError


class Distribution:
    """A named, seeded sampling rule for one scenario parameter."""

    def sample(self, rng: random.Random) -> Any:
        raise NotImplementedError

    def spec(self) -> str:
        """Compact round-trippable spec string (``parse_distribution`` inverse)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Distribution) and self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(self.spec())


@dataclass(frozen=True, eq=False)
class Constant(Distribution):
    """Always the same value (``const:V``; bare literals parse to this)."""

    value: Any

    def sample(self, rng: random.Random) -> Any:
        return self.value

    def spec(self) -> str:
        return f"const:{self.value}"


@dataclass(frozen=True, eq=False)
class Uniform(Distribution):
    """Integer uniform over ``[low, high]`` inclusive (``uniform:L,H``)."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise GenerationError(
                f"uniform bounds out of order: [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def spec(self) -> str:
        return f"uniform:{self.low},{self.high}"


@dataclass(frozen=True, eq=False)
class FloatUniform(Distribution):
    """Float uniform over ``[low, high]`` (``funiform:L,H``)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise GenerationError(
                f"funiform bounds out of order: [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def spec(self) -> str:
        return f"funiform:{self.low},{self.high}"


@dataclass(frozen=True, eq=False)
class Choice(Distribution):
    """Uniform pick from an explicit value list (``choice:a,b,c``)."""

    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise GenerationError("choice distribution needs at least one value")

    def sample(self, rng: random.Random) -> Any:
        return rng.choice(self.values)

    def spec(self) -> str:
        return "choice:" + ",".join(str(value) for value in self.values)


@dataclass(frozen=True, eq=False)
class Zipf(Distribution):
    """Zipf-skewed pick from ``{1..n}`` (``zipf:ALPHA,N``).

    Rank ``k`` is drawn with probability proportional to ``k**-alpha`` --
    the conventional model for skewed contention (a few hot locks or
    variables absorb most of the traffic).
    """

    alpha: float
    n: int
    _cdf: Tuple[float, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise GenerationError(f"zipf needs n >= 1, got {self.n}")
        if self.alpha < 0:
            raise GenerationError(f"zipf needs alpha >= 0, got {self.alpha}")
        weights = [1.0 / (k ** self.alpha) for k in range(1, self.n + 1)]
        total = sum(weights)
        cdf, running = [], 0.0
        for weight in weights:
            running += weight / total
            cdf.append(running)
        object.__setattr__(self, "_cdf", tuple(cdf))

    def sample(self, rng: random.Random) -> int:
        roll = rng.random()
        for rank, bound in enumerate(self._cdf, start=1):
            if roll <= bound:
                return rank
        return self.n  # pragma: no cover - float round-off guard

    def spec(self) -> str:
        return f"zipf:{self.alpha},{self.n}"


@dataclass(frozen=True, eq=False)
class Geometric(Distribution):
    """Geometric depth ``1 + Geom(p)`` capped at ``cap`` (``geom:P,CAP``).

    The natural shape for nesting depths: depth ``d`` needs ``d - 1``
    consecutive successes.
    """

    p: float
    cap: int

    def __post_init__(self) -> None:
        if not 0.0 < self.p <= 1.0:
            raise GenerationError(f"geom needs p in (0, 1], got {self.p}")
        if self.cap < 1:
            raise GenerationError(f"geom needs cap >= 1, got {self.cap}")

    def sample(self, rng: random.Random) -> int:
        depth = 1
        while depth < self.cap and rng.random() < self.p:
            depth += 1
        return depth

    def spec(self) -> str:
        return f"geom:{self.p},{self.cap}"


def _parse_scalar(text: str) -> Any:
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


_PARSERS = {
    "const": lambda args: Constant(_parse_scalar(args[0])),
    "uniform": lambda args: Uniform(int(args[0]), int(args[1])),
    "funiform": lambda args: FloatUniform(float(args[0]), float(args[1])),
    "choice": lambda args: Choice(tuple(_parse_scalar(a) for a in args)),
    "zipf": lambda args: Zipf(float(args[0]), int(args[1])),
    "geom": lambda args: Geometric(float(args[0]), int(args[1])),
}

DistributionSpec = Union[Distribution, str, int, float, bool]


def parse_distribution(spec: DistributionSpec) -> Distribution:
    """Turn a spec into a :class:`Distribution`.

    Accepts an already-built distribution, a bare literal (``4``, ``0.6``,
    ``"racy"`` -> :class:`Constant`), or a spec string ``NAME:ARGS``
    (``"uniform:2,8"``).  Unknown names and malformed argument lists raise
    :class:`~repro.errors.GenerationError`.
    """
    if isinstance(spec, Distribution):
        return spec
    if isinstance(spec, (int, float, bool)):
        return Constant(spec)
    if not isinstance(spec, str):
        raise GenerationError(f"cannot parse distribution spec {spec!r}")
    name, separator, tail = spec.partition(":")
    if not separator:
        return Constant(_parse_scalar(spec))
    parser = _PARSERS.get(name)
    if parser is None:
        known = ", ".join(sorted(_PARSERS))
        raise GenerationError(
            f"unknown distribution {name!r} in spec {spec!r}; known: {known}")
    args = [item.strip() for item in tail.split(",") if item.strip()]
    try:
        return parser(args)
    except GenerationError:
        raise
    except (ValueError, IndexError) as error:
        raise GenerationError(
            f"malformed distribution spec {spec!r}: {error}") from error


@dataclass(frozen=True)
class Space:
    """A named parameter space: one distribution per scenario knob.

    ``sample(rng)`` draws one concrete assignment (a plain dict, stable key
    order).  ``override`` layers replacement specs on top without mutating
    the original -- the corpus builder narrows a family's declared space
    with per-config constants this way.
    """

    distributions: Tuple[Tuple[str, Distribution], ...]

    @classmethod
    def from_config(cls, config: Mapping[str, DistributionSpec]) -> "Space":
        return cls(tuple((key, parse_distribution(value))
                         for key, value in config.items()))

    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _dist in self.distributions)

    def sample(self, rng: random.Random) -> Dict[str, Any]:
        return {name: dist.sample(rng) for name, dist in self.distributions}

    def override(self, config: Optional[Mapping[str, DistributionSpec]]) -> "Space":
        if not config:
            return self
        unknown = sorted(set(config) - set(self.names()))
        if unknown:
            raise GenerationError(
                f"unknown parameters {unknown} for space with "
                f"{sorted(self.names())}")
        replaced = dict(self.distributions)
        for key, value in config.items():
            replaced[key] = parse_distribution(value)
        return Space(tuple(replaced.items()))

    def to_config(self) -> Dict[str, str]:
        """Spec-string form (JSON-safe, round-trips via ``from_config``)."""
        return {name: dist.spec() for name, dist in self.distributions}

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def __len__(self) -> int:
        return len(self.distributions)
