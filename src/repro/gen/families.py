"""Scenario families: named, distribution-parameterized program builders.

A :class:`ScenarioFamily` couples a program builder (threads x ops over
locks, queues, barriers, the heap) with a declared :class:`~repro.gen.
distributions.Space` of its knobs and the analyses its traces feed.  Every
family is also registered as an ordinary trace generator in
:data:`repro.trace.generators.GENERATOR_REGISTRY` -- the single source of
truth for workload kinds -- so scenario traces are reachable from every
existing front end unchanged: ``repro generate``, ``repro sweep`` suites,
``repro watch --source kind:...`` generator sources, and the benchmark
harness.

Six families ship:

==================  ====================================================
family               shape
==================  ====================================================
``locked-mix``       shared variables under nested critical sections
                     (Zipf-hot locks, occasional lock-order inversion)
``producer-consumer``  SPSC bounded queues with racy payload aggregation
``mpmc-queue``       one MPMC bounded queue, many producers/consumers
``barrier-phases``   phased computation; races inside a phase, sync at
                     the barrier
``fork-join``        fork/join task tree over shared accumulators, with
                     an occasionally *unjoined* (detached) worker
``heap-churn``       alloc/use/free lifetimes with escape publication
                     and tunable reuse-after-free placement
==================  ====================================================

Every family generator is deterministic given ``seed``: parameter
sampling, program construction and schedule execution all draw from one
``random.Random(seed)`` in a fixed order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GenerationError
from repro.gen.distributions import Space
from repro.gen.scenario import Op, Scenario, execute
from repro.gen.schedulers import make_scheduler
from repro.trace.trace import Trace


@dataclass(frozen=True)
class ScenarioFamily:
    """One named scenario family (see module docstring)."""

    name: str
    description: str
    space: Space
    analyses: Tuple[str, ...]
    builder: Callable[..., Scenario]

    def build_scenario(self, num_threads: int, events_per_thread: int,
                       rng: random.Random, name: str, **params) -> Scenario:
        return self.builder(num_threads, events_per_thread, rng, name,
                            **params)


#: Families by name (insertion order is presentation order).
FAMILY_REGISTRY: Dict[str, ScenarioFamily] = {}


def get_family(name: str) -> ScenarioFamily:
    try:
        return FAMILY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(FAMILY_REGISTRY))
        raise GenerationError(
            f"unknown scenario family {name!r}; known: {known}") from None


def _check_positive(**kwargs: int) -> None:
    for key, value in kwargs.items():
        if value <= 0:
            raise GenerationError(f"{key} must be positive, got {value}")


# --------------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------------- #
def _access_op(rng: random.Random, variable: str, write_fraction: float) -> Op:
    if rng.random() < write_fraction:
        return Op("write", target=variable, value=rng.randrange(1000))
    return Op("read", target=variable)


def build_locked_mix(num_threads: int, events_per_thread: int,
                     rng: random.Random, name: str, *,
                     num_locks: int = 4, num_variables: int = 8,
                     contention: float = 0.6, write_fraction: float = 0.4,
                     nesting_depth: int = 2,
                     inversion_fraction: float = 0.15) -> Scenario:
    """Nested critical sections over shared variables.

    ``contention`` is the probability a block runs under locks;
    ``nesting_depth`` bounds how many distinct locks nest (mostly acquired
    in global ascending order, inverted with ``inversion_fraction`` --
    the raw material of deadlock *prediction*: inverted nesting that
    happened not to deadlock in this schedule).
    """
    _check_positive(num_threads=num_threads,
                    events_per_thread=events_per_thread,
                    num_locks=num_locks, num_variables=num_variables)
    programs: Dict[int, List[Op]] = {}
    for thread in range(num_threads):
        ops: List[Op] = []
        while len(ops) < events_per_thread:
            variable = f"x{rng.randrange(num_variables)}"
            if rng.random() < contention and num_locks >= 1:
                depth = min(max(1, nesting_depth), num_locks)
                depth = rng.randint(1, depth)
                locks = sorted(rng.sample(range(num_locks),
                                          min(depth, num_locks)))
                if len(locks) > 1 and rng.random() < inversion_fraction:
                    locks = list(reversed(locks))
                for lock in locks:
                    ops.append(Op("acquire", target=f"l{lock}"))
                    ops.append(_access_op(rng, variable, write_fraction))
                for lock in reversed(locks):
                    ops.append(Op("release", target=f"l{lock}"))
            else:
                ops.append(_access_op(rng, variable, write_fraction))
        programs[thread] = ops
    return Scenario(name=name, programs=programs)


def build_producer_consumer(num_threads: int, events_per_thread: int,
                            rng: random.Random, name: str, *,
                            queue_capacity: int = 2,
                            racy_aggregate_fraction: float = 0.3,
                            write_fraction: float = 0.5) -> Scenario:
    """SPSC queue pairs: thread ``2i`` produces into ``q<i>``, ``2i+1``
    consumes.  Consumers fold payloads into a shared ``total`` aggregate --
    protected by ``agg_lock`` except with ``racy_aggregate_fraction``,
    which plants genuine data races next to the clean queue synchronization.
    """
    _check_positive(num_threads=num_threads,
                    events_per_thread=events_per_thread,
                    queue_capacity=queue_capacity)
    items = max(1, events_per_thread // 2)
    programs: Dict[int, List[Op]] = {}
    capacities: Dict[str, int] = {}
    if num_threads == 1:
        # Degenerate single-thread case: the one thread plays both roles
        # (put then get never blocks), so the trace honours the requested
        # thread count instead of silently growing a second chain.
        capacities["q0"] = queue_capacity
        ops: List[Op] = []
        for item in range(items):
            ops.append(Op("put", target="q0", value=item))
            ops.append(Op("get", target="q0"))
        programs[0] = ops
        return Scenario(name=name, programs=programs,
                        queue_capacity=capacities)
    pairs = max(1, num_threads // 2)
    for pair in range(pairs):
        queue = f"q{pair}"
        capacities[queue] = queue_capacity
        producer = [Op("put", target=queue, value=item)
                    for item in range(items)]
        consumer: List[Op] = []
        for _item in range(items):
            consumer.append(Op("get", target=queue))
            if rng.random() < racy_aggregate_fraction:
                consumer.append(_access_op(rng, "total", write_fraction))
            else:
                consumer.append(Op("acquire", target="agg_lock"))
                consumer.append(_access_op(rng, "total", write_fraction))
                consumer.append(Op("release", target="agg_lock"))
        programs[2 * pair] = producer
        programs[2 * pair + 1] = consumer
    if num_threads % 2 and num_threads > 1:
        # Odd straggler: an auditor thread sampling the aggregate.
        auditor = [
            _access_op(rng, "total", write_fraction * 0.5)
            for _ in range(max(1, events_per_thread // 2))
        ]
        programs[num_threads - 1] = auditor
    return Scenario(name=name, programs=programs, queue_capacity=capacities)


def build_mpmc_queue(num_threads: int, events_per_thread: int,
                     rng: random.Random, name: str, *,
                     queue_capacity: int = 4,
                     locked_tally_fraction: float = 0.5,
                     write_fraction: float = 0.6) -> Scenario:
    """One MPMC bounded queue: the first half of the threads produce, the
    rest consume; consumers update a shared tally (locked or racy)."""
    _check_positive(num_threads=num_threads,
                    events_per_thread=events_per_thread,
                    queue_capacity=queue_capacity)
    if num_threads < 2:
        raise GenerationError("mpmc-queue needs at least two threads")
    producers = list(range(max(1, num_threads // 2)))
    consumers = list(range(len(producers), num_threads))
    items_per_producer = max(1, events_per_thread // 2)
    total_items = items_per_producer * len(producers)
    programs: Dict[int, List[Op]] = {}
    for producer in producers:
        programs[producer] = [Op("put", target="q", value=item)
                              for item in range(items_per_producer)]
    base, extra = divmod(total_items, len(consumers))
    for position, consumer in enumerate(consumers):
        gets = base + (1 if position < extra else 0)
        ops: List[Op] = []
        for _item in range(gets):
            ops.append(Op("get", target="q"))
            if rng.random() < locked_tally_fraction:
                ops.append(Op("acquire", target="tally_lock"))
                ops.append(_access_op(rng, "tally", write_fraction))
                ops.append(Op("release", target="tally_lock"))
            else:
                ops.append(_access_op(rng, "tally", write_fraction))
        programs[consumer] = ops
    return Scenario(name=name, programs=programs,
                    queue_capacity={"q": queue_capacity})


def build_barrier_phases(num_threads: int, events_per_thread: int,
                         rng: random.Random, name: str, *,
                         phases: int = 3, vars_per_phase: int = 3,
                         write_fraction: float = 0.5,
                         cross_phase_fraction: float = 0.2) -> Scenario:
    """Phased computation: racy accesses to phase-local variables, then a
    barrier.  With ``cross_phase_fraction`` a thread reaches back to a
    *previous* phase's variable -- ordered by the barrier, so not a race:
    the analysis has to tell the two apart.
    """
    _check_positive(num_threads=num_threads,
                    events_per_thread=events_per_thread,
                    phases=phases, vars_per_phase=vars_per_phase)
    accesses = max(1, events_per_thread // phases - 1)
    programs: Dict[int, List[Op]] = {}
    for thread in range(num_threads):
        ops: List[Op] = []
        for phase in range(phases):
            for _ in range(accesses):
                if phase > 0 and rng.random() < cross_phase_fraction:
                    source_phase = rng.randrange(phase)
                else:
                    source_phase = phase
                variable = f"ph{source_phase}_v{rng.randrange(vars_per_phase)}"
                ops.append(_access_op(rng, variable, write_fraction))
            ops.append(Op("barrier", target="b"))
        programs[thread] = ops
    return Scenario(name=name, programs=programs)


def build_fork_join(num_threads: int, events_per_thread: int,
                    rng: random.Random, name: str, *,
                    num_accumulators: int = 2, locked_fraction: float = 0.5,
                    detach_fraction: float = 0.15,
                    write_fraction: float = 0.7) -> Scenario:
    """Fork/join task tree: thread 0 forks workers, each folds into shared
    accumulators (locked or racy), then thread 0 joins and reads results.

    With ``detach_fraction`` a worker is left *unjoined* (detached), so the
    main thread's final reads race with that worker's writes -- the classic
    join-elision bug.
    """
    _check_positive(num_threads=num_threads,
                    events_per_thread=events_per_thread,
                    num_accumulators=num_accumulators)
    workers = list(range(1, num_threads))
    programs: Dict[int, List[Op]] = {}
    main: List[Op] = []
    detached = []
    for worker in workers:
        main.append(Op("fork", target=worker))
        work: List[Op] = []
        while len(work) < events_per_thread:
            accumulator = f"acc{rng.randrange(num_accumulators)}"
            if rng.random() < locked_fraction:
                work.append(Op("acquire", target="acc_lock"))
                work.append(_access_op(rng, accumulator, write_fraction))
                work.append(Op("release", target="acc_lock"))
            else:
                work.append(_access_op(rng, accumulator, write_fraction))
        programs[worker] = work
        if rng.random() < detach_fraction:
            detached.append(worker)
    for worker in workers:
        if worker not in detached:
            main.append(Op("join", target=worker))
    for accumulator in range(num_accumulators):
        main.append(Op("read", target=f"acc{accumulator}"))
    programs[0] = main
    # Single-thread degenerate case: just accesses.
    if not workers:
        programs[0] = [
            _access_op(rng, f"acc{rng.randrange(num_accumulators)}",
                       write_fraction)
            for _ in range(events_per_thread)
        ]
    return Scenario(name=name, programs=programs, roots=[0])


def build_heap_churn(num_threads: int, events_per_thread: int,
                     rng: random.Random, name: str, *,
                     num_objects: int = 12, escape_fraction: float = 0.5,
                     uaf_fraction: float = 0.2,
                     double_free_fraction: float = 0.05,
                     locked_use_fraction: float = 0.3,
                     write_fraction: float = 0.5) -> Scenario:
    """Heap lifetimes: owners alloc/use/free objects; escaped objects are
    used by other threads.  ``uaf_fraction`` of escaped objects have a
    *late use* placed after the owner's free in program structure, and
    ``double_free_fraction`` get a second free from a different thread --
    the candidate pairs the memory-bug and UAF analyses hunt."""
    _check_positive(num_threads=num_threads,
                    events_per_thread=events_per_thread,
                    num_objects=num_objects)
    programs: Dict[int, List[Op]] = {t: [] for t in range(num_threads)}
    uses_per_object = max(1, (events_per_thread * num_threads)
                          // (num_objects * 2) - 2)
    for obj in range(num_objects):
        owner = rng.randrange(num_threads)
        address = f"obj{obj}"
        programs[owner].append(Op("alloc", target=address))
        escaped = num_threads > 1 and rng.random() < escape_fraction
        users = [owner]
        if escaped:
            other = rng.randrange(num_threads - 1)
            other = other if other < owner else other + 1
            users.append(other)
        for use in range(uses_per_object):
            user = users[rng.randrange(len(users))]
            if rng.random() < locked_use_fraction:
                programs[user].append(Op("acquire", target="heap_lock"))
                programs[user].append(
                    _access_op(rng, address, write_fraction))
                programs[user].append(Op("release", target="heap_lock"))
            else:
                programs[user].append(_access_op(rng, address, write_fraction))
        programs[owner].append(Op("free", target=address))
        if escaped and rng.random() < uaf_fraction:
            # Late use: placed after the free in the *owner's* program
            # order; whether it races past the free is up to the schedule.
            late_user = users[-1]
            programs[late_user].append(
                _access_op(rng, address, write_fraction))
        if escaped and rng.random() < double_free_fraction:
            programs[users[-1]].append(Op("free", target=address))
    for thread in range(num_threads):
        if not programs[thread]:
            programs[thread] = [Op("read", target="idle")]
    return Scenario(name=name, programs=programs)


# --------------------------------------------------------------------------- #
# Family registration
# --------------------------------------------------------------------------- #
def _family(name: str, description: str, builder: Callable[..., Scenario],
            analyses: Tuple[str, ...], space: Dict[str, object]) -> None:
    FAMILY_REGISTRY[name] = ScenarioFamily(
        name=name, description=description, space=Space.from_config(space),
        analyses=analyses, builder=builder)


_family(
    "locked-mix",
    "nested critical sections over shared variables, Zipf-hot locks",
    build_locked_mix,
    ("race-prediction", "deadlock-prediction"),
    {
        "num_locks": "uniform:2,6",
        "num_variables": "uniform:4,12",
        "contention": "funiform:0.3,0.9",
        "write_fraction": "funiform:0.2,0.6",
        "nesting_depth": "geom:0.45,4",
        "inversion_fraction": "funiform:0.0,0.3",
    },
)

_family(
    "producer-consumer",
    "SPSC bounded queues with racy payload aggregation",
    build_producer_consumer,
    ("race-prediction", "c11-races"),
    {
        "queue_capacity": "uniform:1,4",
        "racy_aggregate_fraction": "funiform:0.1,0.6",
        "write_fraction": "funiform:0.3,0.7",
    },
)

_family(
    "mpmc-queue",
    "one MPMC bounded queue, many producers and consumers",
    build_mpmc_queue,
    ("c11-races", "race-prediction"),
    {
        "queue_capacity": "uniform:2,8",
        "locked_tally_fraction": "funiform:0.2,0.8",
        "write_fraction": "funiform:0.4,0.8",
    },
)

_family(
    "barrier-phases",
    "phased computation: races within a phase, barrier sync between",
    build_barrier_phases,
    ("race-prediction", "c11-races"),
    {
        "phases": "uniform:2,5",
        "vars_per_phase": "uniform:2,5",
        "write_fraction": "funiform:0.3,0.7",
        "cross_phase_fraction": "funiform:0.0,0.4",
    },
)

_family(
    "fork-join",
    "fork/join task tree over shared accumulators, detached workers",
    build_fork_join,
    ("race-prediction",),
    {
        "num_accumulators": "uniform:1,4",
        "locked_fraction": "funiform:0.2,0.8",
        "detach_fraction": "funiform:0.0,0.4",
        "write_fraction": "funiform:0.5,0.9",
    },
)

_family(
    "heap-churn",
    "alloc/use/free lifetimes with escape and reuse-after-free placement",
    build_heap_churn,
    ("memory-bugs", "use-after-free", "race-prediction"),
    {
        "num_objects": "uniform:6,20",
        "escape_fraction": "funiform:0.2,0.8",
        "uaf_fraction": "funiform:0.0,0.5",
        "double_free_fraction": "funiform:0.0,0.15",
        "locked_use_fraction": "funiform:0.1,0.5",
        "write_fraction": "funiform:0.3,0.7",
    },
)


# --------------------------------------------------------------------------- #
# Generator-registry integration
# --------------------------------------------------------------------------- #
def build_family_trace(family_name: str, num_threads: int = 4,
                       events_per_thread: int = 100,
                       seed: Optional[int] = 0, name: Optional[str] = None,
                       scheduler: str = "rr", **params) -> Trace:
    """Build one trace of ``family_name``: sample unpinned knobs, build the
    scenario program, execute it under ``scheduler``.

    Explicit keyword ``params`` pin knobs; every knob left unpinned is
    sampled from the family's declared space.  All randomness (sampling,
    program construction, schedule) derives from one ``Random(seed)``, so
    the trace is a pure function of ``(family, shape, seed, scheduler,
    params)``.
    """
    family = get_family(family_name)
    unknown = sorted(set(params) - set(family.space.names()))
    if unknown:
        raise GenerationError(
            f"unknown parameters {unknown} for scenario family "
            f"{family_name!r}; known: {sorted(family.space.names())}")
    rng = random.Random(seed)
    sampled = family.space.sample(rng)
    sampled.update(params)
    trace_name = name if name is not None else family_name
    scenario = family.build_scenario(num_threads, events_per_thread, rng,
                                     trace_name, **sampled)
    trace, _stats = execute(scenario, make_scheduler(scheduler), rng=rng)
    return trace


def _make_generator(family_name: str) -> Callable[..., Trace]:
    def generator(num_threads: int = 4, events_per_thread: int = 100,
                  seed: Optional[int] = 0, name: Optional[str] = None,
                  scheduler: str = "rr", **params) -> Trace:
        return build_family_trace(family_name, num_threads=num_threads,
                                  events_per_thread=events_per_thread,
                                  seed=seed, name=name, scheduler=scheduler,
                                  **params)

    generator.__name__ = f"scenario_{family_name.replace('-', '_')}"
    generator.__qualname__ = generator.__name__
    generator.__doc__ = FAMILY_REGISTRY[family_name].description
    return generator


#: Kept at module scope so sweep worker processes can rebuild traces from a
#: pickled spec: the registry entry resolves back to these functions by
#: importing this module, never by pickling the callables themselves.
SCENARIO_GENERATORS: Dict[str, Callable[..., Trace]] = {
    family_name: _make_generator(family_name)
    for family_name in FAMILY_REGISTRY
}


def register_scenario_generators() -> None:
    """Register every family in the unified generator registry.

    Refuses to shadow an existing non-scenario kind: the registry is the
    single source of truth for kind names, and a silent overwrite would
    fork the ``repro gen --list`` / ``repro sweep`` views.
    """
    from repro.trace.generators import (
        GENERATOR_REGISTRY,
        register_generator,
    )

    for family_name, family in FAMILY_REGISTRY.items():
        existing = GENERATOR_REGISTRY.get(family_name)
        if existing is not None and existing.source != "scenario":
            raise GenerationError(
                f"scenario family {family_name!r} collides with a "
                f"registered {existing.source} generator of the same name")
        register_generator(family_name, SCENARIO_GENERATORS[family_name],
                           analyses=family.analyses,
                           description=family.description,
                           source="scenario")


register_scenario_generators()
