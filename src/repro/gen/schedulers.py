"""Seeded schedulers for scenario-program execution.

A scheduler answers exactly one question -- *which runnable thread takes
the next step* -- against the live :class:`~repro.gen.scenario.ScenarioExecutor`
state.  Three shipped policies span the interleaving spectrum the CSST
evaluation cares about:

* ``rr`` (:class:`RoundRobinBursts`): each thread runs a random-length
  burst, then the next runnable thread in cyclic order takes over.  Long
  bursts mean few cross-chain edges (sparse ``q``); short bursts mean
  dense interleaving.
* ``weighted`` (:class:`ContentionWeighted`): threads are picked with
  Zipf-skewed probabilities, modeling one hot thread that dominates the
  trace while stragglers interleave around it.
* ``adversarial`` (:class:`AdversarialPreemption`): preferentially
  preempts right at *conflicting* accesses -- when the current thread's
  next op touches a variable another runnable thread is about to touch
  (one of them writing), the scheduler switches to the rival first, which
  maximizes racy adjacency and stresses the analyses' witness search.

Schedulers are addressable by spec string (``"rr"``, ``"rr:burst=6"``,
``"weighted:skew=1.5"``, ``"adversarial:preempt=0.9"``) so corpus configs
and CLI flags can select them declaratively.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import GenerationError


class Scheduler:
    """Base class: pick the next thread from the runnable set."""

    #: Registry spec name (set by subclasses).
    kind: str = "scheduler"

    def pick(self, rng: random.Random, runnable: Sequence[int],
             executor) -> int:
        raise NotImplementedError

    def spec(self) -> str:
        return self.kind


class RoundRobinBursts(Scheduler):
    """Cyclic order with random burst lengths (default scheduler)."""

    kind = "rr"

    def __init__(self, burst: int = 4) -> None:
        if not isinstance(burst, int) or burst < 1:
            raise GenerationError(
                f"rr burst must be an integer >= 1, got {burst!r}")
        self.burst = burst
        self._remaining = 0

    def pick(self, rng: random.Random, runnable: Sequence[int],
             executor) -> int:
        current = executor.current
        if current in runnable and self._remaining > 0:
            self._remaining -= 1
            return current
        # Next runnable thread after the current one in cyclic order; the
        # very first pick starts the cycle at the lowest runnable id.
        if current is None:
            candidates = list(runnable)
        else:
            candidates = [t for t in runnable if t > current] or list(runnable)
        choice = candidates[0]
        self._remaining = rng.randint(1, self.burst) - 1
        return choice

    def spec(self) -> str:
        return f"rr:burst={self.burst}"


class ContentionWeighted(Scheduler):
    """Zipf-skewed thread selection: low thread ids run hot."""

    kind = "weighted"

    def __init__(self, skew: float = 1.0) -> None:
        if skew < 0:
            raise GenerationError(f"weighted skew must be >= 0, got {skew}")
        self.skew = skew

    def pick(self, rng: random.Random, runnable: Sequence[int],
             executor) -> int:
        weights = [1.0 / ((position + 1) ** self.skew)
                   for position in range(len(runnable))]
        total = sum(weights)
        roll = rng.random() * total
        running = 0.0
        for thread, weight in zip(runnable, weights):
            running += weight
            if roll <= running:
                return thread
        return runnable[-1]  # pragma: no cover - float round-off guard

    def spec(self) -> str:
        return f"weighted:skew={self.skew}"


class AdversarialPreemption(Scheduler):
    """Preempt at conflicting accesses to maximize racy adjacency."""

    kind = "adversarial"

    def __init__(self, preempt: float = 0.8) -> None:
        if not 0.0 <= preempt <= 1.0:
            raise GenerationError(
                f"adversarial preempt must be in [0, 1], got {preempt}")
        self.preempt = preempt

    @staticmethod
    def _footprint(op) -> Optional[tuple]:
        if op is None:
            return None
        if op.action in ("read", "write", "atomic_read", "atomic_write",
                         "atomic_rmw", "alloc", "free"):
            writes = op.action not in ("read", "atomic_read")
            return (op.target, writes)
        return None

    def pick(self, rng: random.Random, runnable: Sequence[int],
             executor) -> int:
        footprints = {thread: self._footprint(executor.next_op(thread))
                      for thread in runnable}
        conflicted = []
        for thread in runnable:
            mine = footprints[thread]
            if mine is None:
                continue
            variable, writes = mine
            for other in runnable:
                if other == thread:
                    continue
                theirs = footprints[other]
                if theirs is not None and theirs[0] == variable and (
                        writes or theirs[1]):
                    conflicted.append(thread)
                    break
        if conflicted and rng.random() < self.preempt:
            # Prefer a *different* thread than the current one among the
            # conflicting set: that is the preemption.
            rivals = [t for t in conflicted if t != executor.current]
            return rng.choice(rivals or conflicted)
        return rng.choice(list(runnable))

    def spec(self) -> str:
        return f"adversarial:preempt={self.preempt}"


#: Scheduler factories by spec name.
SCHEDULERS: Dict[str, Callable[..., Scheduler]] = {
    "rr": RoundRobinBursts,
    "weighted": ContentionWeighted,
    "adversarial": AdversarialPreemption,
}

#: Cycle used when a corpus or fuzz run asks for scheduler diversity.
DEFAULT_SCHEDULER_CYCLE: List[str] = ["rr", "weighted", "adversarial"]


def make_scheduler(spec: str) -> Scheduler:
    """Build a scheduler from ``name[:key=value,...]``.

    Parameter values are parsed as int when possible, float otherwise.
    """
    name, _, tail = spec.partition(":")
    factory = SCHEDULERS.get(name)
    if factory is None:
        known = ", ".join(sorted(SCHEDULERS))
        raise GenerationError(
            f"unknown scheduler {name!r}; known: {known}")
    kwargs = {}
    if tail:
        for item in tail.split(","):
            if not item.strip():
                continue
            key, separator, value = item.partition("=")
            if not separator:
                raise GenerationError(
                    f"malformed scheduler parameter {item!r} in {spec!r}")
            value = value.strip()
            try:
                kwargs[key.strip()] = int(value)
            except ValueError:
                try:
                    kwargs[key.strip()] = float(value)
                except ValueError:
                    raise GenerationError(
                        f"non-numeric scheduler parameter {item!r} in "
                        f"{spec!r}") from None
    try:
        return factory(**kwargs)
    except TypeError as error:
        raise GenerationError(
            f"invalid scheduler parameters in {spec!r}: {error}") from error
