"""Scenario programs: small concurrent programs executed into traces.

Where the classic generators in :mod:`repro.trace.generators` emit events
directly from one sampling loop, a *scenario program* models an actual
concurrent program -- one operation list per thread over shared state
(locks, variables, bounded queues, barriers, the heap, child threads) --
and *executes* it under a pluggable seeded scheduler
(:mod:`repro.gen.schedulers`).  The partial-order shape of the resulting
trace is therefore an emergent property of program structure x schedule,
which is exactly the diversity axis the hand-rolled generators cannot
reach: the same program under a round-robin, contention-weighted or
adversarial scheduler yields structurally different interleavings, all of
them *well-formed* (mutual exclusion respected, queues FIFO with
capacity, barriers releasing together, forks before first child event).

Operations (:class:`Op`):

=============  ======================================================
action          trace events emitted when scheduled
=============  ======================================================
``read``        one ``READ`` of ``target``
``write``       one ``WRITE`` of ``target``
``acquire``     one ``ACQUIRE`` (blocks while another thread holds it)
``release``     one ``RELEASE``
``alloc``       one ``ALLOC`` of heap address ``target``
``free``        one ``FREE``
``atomic_*``    one C11 atomic access with ``order``
``fork``        one ``FORK``; the child thread becomes schedulable
``join``        one ``JOIN`` (blocks until the child finishes)
``put``         payload ``WRITE`` + release-``ATOMIC_WRITE`` on the
                queue cell/head (blocks while the queue is full)
``get``         acquire-``ATOMIC_READ`` on the head + payload ``READ``
                (blocks while the queue is empty)
``barrier``     one ``ACQ_REL`` RMW on the per-phase barrier cell
                (blocks until every participant arrived)
``begin/end``   method-invocation boundaries
=============  ======================================================

The executor guarantees termination even for programs whose lock/queue/
barrier structure can wedge under some schedule: when no thread is
runnable it deterministically breaks the tie (skipping a blocked critical
section to its matching release, force-starting a never-forked join
target, releasing a barrier short-handed, dropping an unservable queue
op) and counts the repair in :class:`ExecutionStats` -- generation must
always produce a trace, and the repair count is a visible quality signal
for scenario builders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import GenerationError
from repro.trace.event import MemoryOrder
from repro.trace.trace import Trace

#: Op actions understood by the executor.
ACTIONS = frozenset({
    "read", "write", "acquire", "release", "alloc", "free",
    "atomic_read", "atomic_write", "atomic_rmw",
    "fork", "join", "put", "get", "barrier", "begin", "end",
})

@dataclass(frozen=True)
class Op:
    """One scenario-program operation (see module table).

    ``target`` names the lock / variable / heap address / queue / barrier /
    child thread the operation touches; ``value`` and ``order`` carry
    payloads for accesses, ``operation``/``argument``/``result`` the
    method-invocation metadata of ``begin``/``end``.
    """

    action: str
    target: Any = None
    value: Any = None
    order: Optional[MemoryOrder] = None
    operation: Optional[str] = None
    argument: Any = None
    result: Any = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            known = ", ".join(sorted(ACTIONS))
            raise GenerationError(
                f"unknown scenario op action {self.action!r}; known: {known}")


@dataclass
class Scenario:
    """A concurrent program: one op list per thread plus shared-state decls.

    ``roots`` are the threads schedulable from the start; every other
    thread must be the target of some root-reachable ``fork`` (threads that
    are never forked are force-started only by the stuck-breaker).  Queues
    are bounded FIFO channels (``queue_capacity`` slots each, default 2);
    barrier participants default to every thread of the scenario.
    """

    name: str
    programs: Dict[int, List[Op]]
    roots: Optional[Sequence[int]] = None
    queue_capacity: Dict[str, int] = field(default_factory=dict)
    barrier_parties: Dict[str, Sequence[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.programs:
            raise GenerationError("scenario needs at least one thread program")
        if self.roots is None:
            forked = {op.target for ops in self.programs.values()
                      for op in ops if op.action == "fork"}
            self.roots = [t for t in self.programs if t not in forked]
        if not self.roots:
            raise GenerationError(
                f"scenario {self.name!r} has no root threads (every thread "
                f"is forked by another)")

    @property
    def threads(self) -> List[int]:
        return sorted(self.programs)

    def op_count(self) -> int:
        return sum(len(ops) for ops in self.programs.values())


@dataclass
class ExecutionStats:
    """Diagnostics of one scenario execution."""

    steps: int = 0
    context_switches: int = 0
    repairs: int = 0  #: stuck-breaker interventions (0 for healthy programs)
    skipped_sections: int = 0
    skipped_queue_ops: int = 0
    forced_barrier_releases: int = 0
    forced_starts: int = 0


class _QueueState:
    __slots__ = ("items", "capacity", "produced", "consumed")

    def __init__(self, capacity: int) -> None:
        self.items: List[Any] = []
        self.capacity = capacity
        self.produced = 0
        self.consumed = 0


class ScenarioExecutor:
    """Executes one :class:`Scenario` under a scheduler into a `Trace`.

    The executor owns all shared-state bookkeeping (lock owners, queue
    contents, barrier arrival sets, thread lifecycle); the scheduler only
    ever answers "which runnable thread goes next".  Given the same
    scenario, scheduler and rng seed the emitted trace is identical --
    all iteration is over insertion-ordered containers.
    """

    def __init__(self, scenario: Scenario, rng: random.Random) -> None:
        self.scenario = scenario
        self.rng = rng
        self.trace = Trace(name=scenario.name)
        self.stats = ExecutionStats()
        self._pc: Dict[int, int] = {t: 0 for t in scenario.threads}
        self._started = set(scenario.roots or ())
        self._finished: set = set()
        self._lock_owner: Dict[Any, int] = {}
        self._held: Dict[int, List[Any]] = {t: [] for t in scenario.threads}
        self._queues: Dict[str, _QueueState] = {}
        self._barrier_phase: Dict[str, int] = {}
        self._barrier_arrived: Dict[str, List[int]] = {}
        self.current: Optional[int] = None
        #: last writer thread per variable -- exposed to schedulers so the
        #: adversarial one can preempt at conflicting accesses.
        self.last_writer: Dict[Any, int] = {}

    # ------------------------------------------------------------------ #
    # Thread/op introspection (also the scheduler-facing surface)
    # ------------------------------------------------------------------ #
    def next_op(self, thread: int) -> Optional[Op]:
        program = self.scenario.programs[thread]
        pc = self._pc[thread]
        return program[pc] if pc < len(program) else None

    def _queue(self, name: str) -> _QueueState:
        state = self._queues.get(name)
        if state is None:
            capacity = self.scenario.queue_capacity.get(name, 2)
            state = self._queues[name] = _QueueState(max(1, capacity))
        return state

    def _parties(self, barrier: str) -> List[int]:
        declared = self.scenario.barrier_parties.get(barrier)
        return list(declared) if declared is not None else self.scenario.threads

    def _blocked(self, thread: int, op: Op) -> bool:
        if op.action == "acquire":
            # Locks are non-reentrant: a thread re-acquiring its own lock
            # blocks on itself and is repaired by the stuck-breaker (the
            # section is skipped), keeping the always-produce-a-trace
            # guarantee instead of crashing on a malformed program.
            return self._lock_owner.get(op.target) is not None
        if op.action == "join":
            return op.target not in self._finished
        if op.action == "put":
            queue = self._queue(op.target)
            return len(queue.items) >= queue.capacity
        if op.action == "get":
            return not self._queue(op.target).items
        if op.action == "barrier":
            # A thread that already arrived waits (without re-emitting its
            # arrival event) until the phase releases, which advances its pc
            # past the barrier op.
            return thread in self._barrier_arrived.get(op.target, ())
        return False

    def runnable(self) -> List[int]:
        """Threads that can take a step right now, in sorted thread order."""
        out = []
        for thread in self.scenario.threads:
            if thread in self._finished or thread not in self._started:
                continue
            op = self.next_op(thread)
            if op is None:
                # Program exhausted but not yet marked finished.
                out.append(thread)
                continue
            if not self._blocked(thread, op):
                out.append(thread)
        return out

    def unfinished(self) -> List[int]:
        return [t for t in self.scenario.threads if t not in self._finished]

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self, thread: int) -> None:
        """Execute the next op of ``thread`` (must be runnable)."""
        op = self.next_op(thread)
        if op is None:
            self._finish(thread)
            return
        handler = getattr(self, f"_do_{op.action}")
        handler(thread, op)
        self.stats.steps += 1
        if self.current is not None and self.current != thread:
            self.stats.context_switches += 1
        self.current = thread

    def _advance(self, thread: int) -> None:
        self._pc[thread] += 1
        if self._pc[thread] >= len(self.scenario.programs[thread]):
            self._finish(thread)

    def _finish(self, thread: int) -> None:
        self._finished.add(thread)
        # Leaked locks would wedge every other contender forever; release
        # them so a sloppy program degrades instead of deadlocking.
        for lock in self._held[thread]:
            if self._lock_owner.get(lock) == thread:
                del self._lock_owner[lock]
        self._held[thread] = []

    # Per-action emitters ------------------------------------------------ #
    def _do_read(self, thread: int, op: Op) -> None:
        self.trace.read(thread, op.target, value=op.value)
        self._advance(thread)

    def _do_write(self, thread: int, op: Op) -> None:
        self.trace.write(thread, op.target, value=op.value)
        self.last_writer[op.target] = thread
        self._advance(thread)

    def _do_acquire(self, thread: int, op: Op) -> None:
        if self._lock_owner.get(op.target) is not None:
            raise GenerationError(
                f"scheduler stepped thread {thread} into held lock "
                f"{op.target!r}")
        self._lock_owner[op.target] = thread
        self._held[thread].append(op.target)
        self.trace.acquire(thread, op.target)
        self._advance(thread)

    def _do_release(self, thread: int, op: Op) -> None:
        if self._lock_owner.get(op.target) != thread:
            raise GenerationError(
                f"thread {thread} releases lock {op.target!r} it does not "
                f"hold (malformed scenario program)")
        del self._lock_owner[op.target]
        self._held[thread].remove(op.target)
        self.trace.release(thread, op.target)
        self._advance(thread)

    def _do_alloc(self, thread: int, op: Op) -> None:
        self.trace.alloc(thread, op.target)
        self._advance(thread)

    def _do_free(self, thread: int, op: Op) -> None:
        self.trace.free(thread, op.target)
        self._advance(thread)

    def _do_atomic_read(self, thread: int, op: Op) -> None:
        self.trace.atomic_read(thread, op.target, value=op.value,
                               memory_order=op.order or MemoryOrder.ACQUIRE)
        self._advance(thread)

    def _do_atomic_write(self, thread: int, op: Op) -> None:
        self.trace.atomic_write(thread, op.target, value=op.value,
                                memory_order=op.order or MemoryOrder.RELEASE)
        self.last_writer[op.target] = thread
        self._advance(thread)

    def _do_atomic_rmw(self, thread: int, op: Op) -> None:
        self.trace.atomic_rmw(thread, op.target, value=op.value,
                              memory_order=op.order or MemoryOrder.ACQ_REL)
        self.last_writer[op.target] = thread
        self._advance(thread)

    def _do_fork(self, thread: int, op: Op) -> None:
        if op.target not in self.scenario.programs:
            raise GenerationError(
                f"fork target {op.target!r} has no program")
        self.trace.fork(thread, op.target)
        self._started.add(op.target)
        self._advance(thread)

    def _do_join(self, thread: int, op: Op) -> None:
        self.trace.join(thread, op.target)
        self._advance(thread)

    def _do_put(self, thread: int, op: Op) -> None:
        queue = self._queue(op.target)
        ticket = queue.produced
        queue.produced += 1
        value = op.value if op.value is not None else ticket
        queue.items.append(value)
        slot = ticket % queue.capacity
        cell = f"{op.target}[{slot}]"
        self.trace.write(thread, cell, value=value)
        self.last_writer[cell] = thread
        self.trace.atomic_write(thread, op.target, value=ticket,
                                memory_order=MemoryOrder.RELEASE)
        self.last_writer[op.target] = thread
        self._advance(thread)

    def _do_get(self, thread: int, op: Op) -> None:
        queue = self._queue(op.target)
        ticket = queue.consumed
        queue.consumed += 1
        value = queue.items.pop(0)
        slot = ticket % queue.capacity
        self.trace.atomic_read(thread, op.target, value=ticket,
                               memory_order=MemoryOrder.ACQUIRE)
        self.trace.read(thread, f"{op.target}[{slot}]", value=value)
        self._advance(thread)

    def _do_barrier(self, thread: int, op: Op) -> None:
        phase = self._barrier_phase.setdefault(op.target, 0)
        arrived = self._barrier_arrived.setdefault(op.target, [])
        arrived.append(thread)
        self.trace.atomic_rmw(thread, f"{op.target}#p{phase}",
                              value=len(arrived),
                              memory_order=MemoryOrder.ACQ_REL)
        alive_parties = [t for t in self._parties(op.target)
                         if t not in self._finished]
        if set(arrived) >= set(alive_parties):
            self._release_barrier(op.target)
        # The arrival event is emitted now; the pc advances when the phase
        # releases (via _release_barrier marking this thread released).

    def _release_barrier(self, barrier: str) -> None:
        arrived = self._barrier_arrived.get(barrier, [])
        self._barrier_phase[barrier] = self._barrier_phase.get(barrier, 0) + 1
        self._barrier_arrived[barrier] = []
        for waiter in arrived:
            self._advance(waiter)

    def _do_begin(self, thread: int, op: Op) -> None:
        self.trace.begin(thread, op.operation or "op", argument=op.argument)
        self._advance(thread)

    def _do_end(self, thread: int, op: Op) -> None:
        self.trace.end(thread, op.operation or "op", result=op.result)
        self._advance(thread)

    # ------------------------------------------------------------------ #
    # Stuck breaking
    # ------------------------------------------------------------------ #
    def break_stuck(self) -> None:
        """Deterministically unwedge the execution (see module docstring)."""
        self.stats.repairs += 1
        for thread in self.scenario.threads:
            if thread in self._finished or thread not in self._started:
                continue
            op = self.next_op(thread)
            if op is None or not self._blocked(thread, op):
                continue
            if op.action == "acquire":
                self._skip_section(thread, op.target)
                self.stats.skipped_sections += 1
                return
            if op.action in ("put", "get"):
                self._advance(thread)
                self.stats.skipped_queue_ops += 1
                return
            if op.action == "join":
                self._started.add(op.target)
                self.stats.forced_starts += 1
                return
            if op.action == "barrier":
                self._release_barrier(op.target)
                self.stats.forced_barrier_releases += 1
                return
        # Threads exist that never started and nobody joins them: start one.
        for thread in self.scenario.threads:
            if thread not in self._started and thread not in self._finished:
                self._started.add(thread)
                self.stats.forced_starts += 1
                return
        raise GenerationError(
            f"scenario {self.scenario.name!r} is stuck with no repairable "
            f"thread (unfinished: {self.unfinished()})")

    def _skip_section(self, thread: int, lock: Any) -> None:
        """Advance ``thread`` past the critical section it is blocked on.

        Skips from the blocked ``acquire`` to just after its matching
        ``release`` (tracking nesting of the same lock), dropping every op
        in between -- the trace simply never records the section.
        """
        program = self.scenario.programs[thread]
        pc = self._pc[thread]
        depth = 0
        for position in range(pc, len(program)):
            op = program[position]
            if op.action == "acquire" and op.target == lock:
                depth += 1
            elif op.action == "release" and op.target == lock:
                depth -= 1
                if depth == 0:
                    self._pc[thread] = position + 1
                    if self._pc[thread] >= len(program):
                        self._finish(thread)
                    return
        # No matching release ahead (malformed program): drop the tail.
        self._pc[thread] = len(program)
        self._finish(thread)

    # ------------------------------------------------------------------ #
    # Driving loop
    # ------------------------------------------------------------------ #
    def run(self, scheduler) -> Trace:
        """Execute to completion under ``scheduler`` and return the trace."""
        guard = 0
        limit = max(64, self.scenario.op_count() * 8 + 256)
        while self.unfinished():
            runnable = self.runnable()
            if not runnable:
                self.break_stuck()
                guard += 1
                if guard > limit:  # pragma: no cover - defensive bound
                    raise GenerationError(
                        f"scenario {self.scenario.name!r} failed to make "
                        f"progress after {guard} repairs")
                continue
            thread = scheduler.pick(self.rng, runnable, self)
            if thread not in runnable:
                raise GenerationError(
                    f"scheduler picked non-runnable thread {thread} "
                    f"(runnable: {runnable})")
            self.step(thread)
        return self.trace


def execute(scenario: Scenario, scheduler, seed: Optional[int] = 0,
            rng: Optional[random.Random] = None) -> Tuple[Trace, ExecutionStats]:
    """Run ``scenario`` under ``scheduler`` and return (trace, stats)."""
    executor = ScenarioExecutor(scenario,
                                rng if rng is not None else random.Random(seed))
    trace = executor.run(scheduler)
    return trace, executor.stats
