"""Corpus builder: fan one generation config out into a trace corpus.

``repro gen corpus`` materializes a set of workload kinds -- classic and
scenario-program alike -- into trace files (``.std.gz`` text by default,
``.stc`` binary columnar with ``format="stc"``) plus a JSON *manifest*
describing exactly how each trace was produced (kind, shape, seed, pinned
parameters, scheduler).  Because every generator is deterministic and
both encodings are canonical (zeroed gzip mtime, no embedded filename;
deterministic ``.stc`` section layout), a corpus is a pure function of
its config: rebuilding with the same config yields byte-identical files.

A manifest plugs back into the rest of the system two ways:

* **sweeps** -- :func:`register_corpus_suite` turns the manifest into a
  registered :class:`~repro.runner.corpus.Suite` (specs regenerate the
  traces in worker processes; the files are for external consumers), so
  ``repro sweep --corpus manifest.json`` fans analyses x backends over
  the corpus like any named suite;
* **watching** -- each member file is an ordinary STD trace consumable by
  :class:`~repro.stream.source.FileSource`; ``repro watch --source
  manifest.json#TRACE_ID`` (or the bare manifest, which picks the first
  member) resolves through :func:`resolve_member`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import GenerationError
from repro.gen.distributions import Distribution, parse_distribution
from repro.gen.schedulers import DEFAULT_SCHEDULER_CYCLE
from repro.trace.generators import GENERATOR_REGISTRY, get_generator
from repro.trace.io import save_trace

MANIFEST_VERSION = 1
MANIFEST_FILENAME = "manifest.json"

#: Member trace formats a corpus can be materialized in: STD text
#: (``.std.gz``) or the binary columnar format (``.stc``).
CORPUS_FORMATS = ("std", "stc")

#: Default shape distributions (kept small: a corpus is a sweep input, not
#: a stress test; scale up per config).
DEFAULT_THREADS = "uniform:2,4"
DEFAULT_EVENTS = "uniform:30,70"
#: The linearizability search is exponential in history length; its corpus
#: members stay tiny regardless of the requested event distribution.
HISTORY_EVENTS_CAP = 10


@dataclass(frozen=True)
class CorpusConfig:
    """Declarative recipe for one corpus."""

    name: str = "corpus"
    kinds: Tuple[str, ...] = ()  #: empty = every registered kind
    count: int = 3  #: traces per kind
    seed: int = 0
    threads: str = DEFAULT_THREADS
    events: str = DEFAULT_EVENTS
    #: Pinned generator parameters per kind (values are distribution specs
    #: only in the sense of constants; they are forwarded verbatim).
    params: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...] = ()
    #: Scheduler cycle applied to scenario kinds (index round-robin).
    schedulers: Tuple[str, ...] = tuple(DEFAULT_SCHEDULER_CYCLE)
    #: Member trace format (see :data:`CORPUS_FORMATS`).
    format: str = "std"

    def __post_init__(self) -> None:
        if self.format not in CORPUS_FORMATS:
            raise GenerationError(
                f"unknown corpus trace format {self.format!r}; "
                f"known: {', '.join(CORPUS_FORMATS)}")

    @classmethod
    def from_mapping(cls, config: Mapping[str, object]) -> "CorpusConfig":
        known = {"name", "kinds", "count", "seed", "threads", "events",
                 "params", "schedulers", "format"}
        unknown = sorted(set(config) - known)
        if unknown:
            raise GenerationError(
                f"unknown corpus config keys {unknown}; known: "
                f"{sorted(known)}")
        params = config.get("params", {})
        if not isinstance(params, Mapping) or any(
                not isinstance(overrides, Mapping)
                for overrides in params.values()):
            raise GenerationError("corpus config 'params' must map kind -> "
                                  "{parameter: value}")
        frozen_params = tuple(
            (kind, tuple(sorted(overrides.items())))
            for kind, overrides in params.items())
        for key in ("kinds", "schedulers"):
            value = config.get(key)
            # A bare string would be silently exploded into characters by
            # the tuple() below -- an easy JSON-author mistake.
            if value is not None and (isinstance(value, str)
                                      or not isinstance(value, (list, tuple))):
                raise GenerationError(
                    f"corpus config {key!r} must be a list of names, "
                    f"got {value!r}")
        return cls(
            name=str(config.get("name", "corpus")),
            kinds=tuple(config.get("kinds", ())),
            count=int(config.get("count", 3)),
            seed=int(config.get("seed", 0)),
            threads=str(config.get("threads", DEFAULT_THREADS)),
            events=str(config.get("events", DEFAULT_EVENTS)),
            params=frozen_params,
            schedulers=tuple(config.get("schedulers",
                                        DEFAULT_SCHEDULER_CYCLE)),
            format=str(config.get("format", "std")),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CorpusConfig":
        with open(path, "r", encoding="utf-8") as stream:
            document = json.load(stream)
        if not isinstance(document, dict):
            raise GenerationError(f"corpus config {path} is not a JSON object")
        return cls.from_mapping(document)

    def resolved_kinds(self) -> Tuple[str, ...]:
        if self.kinds:
            unknown = sorted(set(self.kinds) - set(GENERATOR_REGISTRY))
            if unknown:
                known = ", ".join(sorted(GENERATOR_REGISTRY))
                raise GenerationError(
                    f"unknown kinds in corpus config: {unknown}; "
                    f"known: {known}")
            return self.kinds
        return tuple(GENERATOR_REGISTRY)

    def overrides_for(self, kind: str) -> Dict[str, object]:
        for name, overrides in self.params:
            if name == kind:
                return dict(overrides)
        return {}


def _shape_rng_seed(base_seed: int, kind: str, index: int) -> int:
    """Stable per-trace integer seed (no string hashing: ``hash(str)`` is
    salted per process and would break cross-run determinism)."""
    return (base_seed * 1_000_003 + index * 8191) ^ zlib.crc32(kind.encode())


def _member_seed(base_seed: int, index: int) -> int:
    return base_seed * 1000 + index


def _int_sample(dist: Distribution, rng, name: str) -> int:
    """Sample a shape value that must be an integer, cleanly rejecting
    specs whose samples are not (``choice`` legitimately allows strings)."""
    value = dist.sample(rng)
    try:
        return int(value)
    except (TypeError, ValueError):
        raise GenerationError(
            f"corpus {name} distribution {dist.spec()!r} produced "
            f"non-integer sample {value!r}") from None


def plan_corpus(config: CorpusConfig) -> List[Dict[str, object]]:
    """Expand a config into the ordered member list (no trace building).

    Each entry carries everything :func:`repro.trace.generators.build_trace`
    needs, so planning is the deterministic core both the builder and the
    manifest tests rely on.  Member ids come from
    :attr:`~repro.runner.corpus.TraceSpec.trace_id` -- the same property the
    sweep runner stamps on its records -- so manifest ids and sweep output
    always cross-reference exactly.
    """
    import random

    from repro.runner.corpus import TraceSpec

    if config.count < 1:
        raise GenerationError(f"corpus count must be >= 1, got {config.count}")
    threads_dist: Distribution = parse_distribution(config.threads)
    events_dist: Distribution = parse_distribution(config.events)
    members: List[Dict[str, object]] = []
    for kind in config.resolved_kinds():
        entry = get_generator(kind)
        overrides = config.overrides_for(kind)
        for index in range(config.count):
            rng = random.Random(_shape_rng_seed(config.seed, kind, index))
            threads = max(1, _int_sample(threads_dist, rng, "threads"))
            events = max(1, _int_sample(events_dist, rng, "events"))
            if kind == "history":
                events = min(events, HISTORY_EVENTS_CAP)
            params = dict(overrides)
            if entry.source == "scenario" and "scheduler" not in params \
                    and config.schedulers:
                params["scheduler"] = config.schedulers[
                    index % len(config.schedulers)]
            spec = TraceSpec(kind=kind, threads=threads, events=events,
                             seed=_member_seed(config.seed, index),
                             params=tuple(sorted(params.items())))
            suffix = ".stc" if config.format == "stc" else ".std.gz"
            members.append({
                "kind": spec.kind,
                "threads": spec.threads,
                "events": spec.events,
                "seed": spec.seed,
                "params": dict(spec.params),
                "trace_id": spec.trace_id,
                "file": f"{spec.trace_id}{suffix}",
                "analyses": list(entry.analyses),
            })
    return members


def build_corpus(out_dir: Union[str, Path],
                 config: Optional[CorpusConfig] = None,
                 register: bool = True) -> Dict[str, object]:
    """Materialize a corpus: trace files + ``manifest.json`` in ``out_dir``.

    Returns the manifest document.  With ``register`` the corpus is also
    registered as a sweep suite named ``corpus:<name>``.
    """
    from repro.trace.generators import build_trace

    config = config if config is not None else CorpusConfig()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    members = plan_corpus(config)
    for member in members:
        trace = build_trace(member["kind"], num_threads=member["threads"],
                            events=member["events"], seed=member["seed"],
                            name=member["trace_id"], **member["params"])
        save_trace(trace, out / member["file"])
        member["event_count"] = len(trace)
        member["thread_count"] = trace.num_threads
    manifest = {
        "version": MANIFEST_VERSION,
        "name": config.name,
        "suite": f"corpus:{config.name}",
        "seed": config.seed,
        "count": config.count,
        "threads": config.threads,
        "events": config.events,
        "format": config.format,
        "traces": members,
    }
    manifest_path = out / MANIFEST_FILENAME
    with open(manifest_path, "w", encoding="utf-8") as stream:
        json.dump(manifest, stream, indent=2, sort_keys=True)
        stream.write("\n")
    if register:
        register_corpus_suite(manifest)
    return manifest


# --------------------------------------------------------------------------- #
# Manifest consumption
# --------------------------------------------------------------------------- #
def read_manifest(path: Union[str, Path]) -> Optional[Dict[str, object]]:
    """Parse ``path`` as a corpus manifest, once.

    Returns ``None`` when the file is not manifest-*shaped* (unparsable
    JSON, or no ``traces`` member) so callers probing "is this a manifest?"
    and "give me the manifest" share one read.  A manifest-shaped document
    with an unsupported version raises -- that is a real manifest with a
    real problem, not a different kind of file.  A missing/unreadable file
    raises ``OSError`` like any other path argument.
    """
    with open(path, "r", encoding="utf-8") as stream:
        try:
            document = json.load(stream)
        except ValueError:
            return None
    if not isinstance(document, dict) or "traces" not in document:
        return None
    version = document.get("version")
    if version != MANIFEST_VERSION:
        raise GenerationError(
            f"unsupported corpus manifest version {version!r} in {path} "
            f"(this build reads version {MANIFEST_VERSION})")
    return document


def load_manifest(path: Union[str, Path]) -> Dict[str, object]:
    """Read and structurally validate a corpus manifest."""
    document = read_manifest(path)
    if document is None:
        raise GenerationError(f"{path} is not a corpus manifest "
                              f"(no 'traces' member)")
    return document




def suite_from_manifest(manifest: Mapping[str, object],
                        suite_name: Optional[str] = None):
    """Build (without registering) the sweep suite a manifest describes."""
    from repro.runner.corpus import Suite, TraceSpec

    specs = []
    for member in manifest["traces"]:
        specs.append(TraceSpec(
            kind=member["kind"], threads=int(member["threads"]),
            events=int(member["events"]), seed=int(member["seed"]),
            params=tuple(sorted(member.get("params", {}).items())),
        ))
    name = suite_name or str(manifest.get("suite")
                             or f"corpus:{manifest.get('name', 'corpus')}")
    description = (f"generated corpus '{manifest.get('name', 'corpus')}' "
                   f"({len(specs)} traces)")
    return Suite(name=name, description=description, specs=tuple(specs))


def register_corpus_suite(manifest_or_path: Union[str, Path,
                                                  Mapping[str, object]],
                          suite_name: Optional[str] = None):
    """Register the manifest's suite in the global suite registry."""
    from repro.runner.corpus import register_suite

    if isinstance(manifest_or_path, (str, Path)):
        manifest = load_manifest(manifest_or_path)
    else:
        manifest = manifest_or_path
    return register_suite(suite_from_manifest(manifest, suite_name))


def resolve_member(spec: str,
                   manifest: Optional[Mapping[str, object]] = None
                   ) -> Tuple[str, str]:
    """Resolve ``manifest.json[#TRACE_ID]`` to ``(file path, trace name)``.

    A bare manifest path picks the first member.  Pass an already-parsed
    ``manifest`` to skip re-reading the file.  Raises
    :class:`~repro.errors.GenerationError` for empty corpora and unknown
    ids (listing the known ones).
    """
    path, _, fragment = spec.partition("#")
    if manifest is None:
        manifest = load_manifest(path)
    members = manifest["traces"]
    if not members:
        raise GenerationError(f"corpus manifest {path} has no traces")
    base = Path(path).parent
    if not fragment:
        member = members[0]
    else:
        matches = [m for m in members if m.get("trace_id") == fragment]
        if not matches:
            known = ", ".join(str(m.get("trace_id")) for m in members)
            raise GenerationError(
                f"no trace {fragment!r} in corpus {path}; known: {known}")
        member = matches[0]
    return str(base / member["file"]), str(member["trace_id"])
