"""Scenario-program workload generation and differential fuzzing.

The ``repro.gen`` subsystem models small concurrent programs (threads,
nested locks, shared variables, SPSC/MPMC queues, barriers, fork/join,
heap lifetimes), executes them under seeded schedulers into
:class:`~repro.trace.trace.Trace` objects, and declares every knob as a
named distribution LITMUS-RT-style so one configuration fans out into a
whole corpus.  On top of the generator sit:

* the corpus builder (:mod:`repro.gen.corpus`, ``repro gen corpus``):
  writes ``.std.gz`` corpora plus a JSON manifest and registers each
  corpus as a sweep suite / watchable file set, and
* the differential fuzzer (:mod:`repro.gen.fuzz`, ``repro fuzz``): runs
  every applicable backend pair and streaming-vs-batch on generated
  traces, compares findings, and delta-debugs divergences down to minimal
  counterexample traces.

Importing this package (or :mod:`repro.trace.generators`) registers the
scenario families in the unified generator registry, so they are
addressable from every front end (``generate``/``sweep``/``watch``/
``bench``) like the classic kinds.  ``corpus`` and ``fuzz`` are imported
lazily (PEP 562) -- they pull in the runner/stream/analysis layers, which
the plain generation path does not need.
"""

from __future__ import annotations

from repro.gen.distributions import (
    Choice,
    Constant,
    Distribution,
    FloatUniform,
    Geometric,
    Space,
    Uniform,
    Zipf,
    parse_distribution,
)
from repro.gen.families import (
    FAMILY_REGISTRY,
    ScenarioFamily,
    build_family_trace,
    get_family,
)
from repro.gen.scenario import (
    ExecutionStats,
    Op,
    Scenario,
    ScenarioExecutor,
    execute,
)
from repro.gen.schedulers import (
    SCHEDULERS,
    AdversarialPreemption,
    ContentionWeighted,
    RoundRobinBursts,
    Scheduler,
    make_scheduler,
)

__all__ = [
    "AdversarialPreemption",
    "Choice",
    "Constant",
    "ContentionWeighted",
    "Distribution",
    "ExecutionStats",
    "FAMILY_REGISTRY",
    "FloatUniform",
    "Geometric",
    "Op",
    "RoundRobinBursts",
    "SCHEDULERS",
    "Scenario",
    "ScenarioExecutor",
    "ScenarioFamily",
    "Scheduler",
    "Space",
    "Uniform",
    "Zipf",
    "build_family_trace",
    "corpus",
    "execute",
    "fuzz",
    "get_family",
    "make_scheduler",
    "parse_distribution",
]


def __getattr__(name: str):
    """Lazy submodule access for the heavy layers (PEP 562)."""
    if name in ("corpus", "fuzz"):
        import importlib

        return importlib.import_module(f"repro.gen.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
