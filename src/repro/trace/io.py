"""Format-dispatching trace I/O.

:func:`read_trace` and :func:`save_trace` are the universal entry points
the CLI, the :class:`~repro.api.session.Session` facade, corpora and the
stream sources use: they pick between the STD text format
(:mod:`repro.trace.formats`) and the ``.stc`` binary columnar format
(:mod:`repro.trace.binfmt`) so every surface accepts either transparently.

Reads sniff by content first -- the ``.stc`` magic bytes win over any file
extension, looking through one gzip layer if present -- and fall back to
the extension, so a binary trace with a surprising name still loads
correctly and a text trace is never fed to the binary decoder.  Writes
dispatch on the destination suffix (``.stc`` / ``.stc.gz`` are binary,
anything else is STD text; ``.gz`` always means canonical, byte-
reproducible gzip).
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path
from typing import Optional, TextIO, Union

from repro.obs import metrics as obs_metrics
from repro.trace.binfmt import STC_MAGIC, read_trace_stc, write_trace_stc
from repro.trace.formats import dump_trace, load_trace
from repro.trace.trace import Trace

#: Path suffixes that select the binary columnar format on write.
STC_SUFFIXES = (".stc", ".stc.gz")


def path_format(path: Union[str, Path]) -> str:
    """The format (``"std"`` or ``"stc"``) a path's suffix selects."""
    return "stc" if str(path).endswith(STC_SUFFIXES) else "std"


def sniff_format(path: Union[str, Path]) -> Optional[str]:
    """The format the *content* of ``path`` declares, or ``None`` when the
    file is missing/unreadable or starts with neither magic.

    Looks through one gzip layer: a ``.gz`` member whose decompressed
    stream opens with the ``.stc`` magic sniffs as ``"stc"``.
    """
    try:
        with open(path, "rb") as stream:
            head = stream.read(4)
        if head[:2] == b"\x1f\x8b":
            with gzip.open(path, "rb") as stream:
                head = stream.read(4)
        return "stc" if head == STC_MAGIC else None
    except OSError:
        return None


def trace_format(path: Union[str, Path]) -> str:
    """The effective format of an existing trace file: content magic
    first, extension as the tiebreak."""
    sniffed = sniff_format(path)
    if sniffed is not None:
        return sniffed
    return path_format(path)


def save_trace(trace: Trace, destination: Union[str, Path, TextIO]) -> None:
    """Serialise ``trace`` to ``destination`` in the format its suffix
    selects: ``.stc`` / ``.stc.gz`` binary columnar, everything else STD
    text (text streams are always STD)."""
    registry = obs_metrics.ACTIVE
    if (isinstance(destination, (str, Path))
            and path_format(destination) == "stc"):
        write_trace_stc(trace, destination)
        if registry is not None:
            registry.counter("trace_writes_total", format="stc").inc()
        return
    dump_trace(trace, destination)
    if registry is not None:
        registry.counter("trace_writes_total", format="std").inc()


def read_trace(source: Union[str, Path, TextIO],
               name: str = "trace") -> Trace:
    """Load a trace from a path or text stream, sniffing the format.

    A path whose content (or, failing that, suffix) identifies the binary
    format decodes to a :class:`~repro.trace.binfmt.LazyTrace` -- no
    event objects until accessed; anything else parses as STD text.
    ``name`` is the fallback name, as in
    :func:`~repro.trace.formats.load_trace` (a stored name wins).
    """
    registry = obs_metrics.ACTIVE
    if registry is None:
        if isinstance(source, (str, Path)) and trace_format(source) == "stc":
            return read_trace_stc(source)
        return load_trace(source, name=name)
    fmt = ("stc" if isinstance(source, (str, Path))
           and trace_format(source) == "stc" else "std")
    with registry.histogram("trace_parse_seconds", format=fmt).time():
        trace = (read_trace_stc(source) if fmt == "stc"
                 else load_trace(source, name=name))
    registry.counter("trace_loads_total", format=fmt).inc()
    if isinstance(source, (str, Path)):
        try:
            registry.counter("trace_parse_bytes_total", format=fmt) \
                .inc(os.path.getsize(source))
        except OSError:  # pragma: no cover - raced file removal
            pass
    return trace
