"""Trace container with the per-thread and per-variable indexes that the
dynamic analyses rely on.

A :class:`Trace` stores events in observed (total) order, assigns per-thread
sequence ids automatically, and exposes the derived views every analysis
needs repeatedly: per-thread chains, accesses grouped by variable, critical
sections per lock, the observed reads-from map, and fork/join edges.

The derived indexes are maintained *incrementally*: every append updates the
per-variable access lists, the reads-from map, the lock-set map and the
critical-section list in O(1) amortised time, so a streaming consumer
(:mod:`repro.stream`) can feed events one at a time and query the indexes
after every event without re-scanning the trace.  The accessor methods
return fresh copies, as they always did, so callers can mutate the returned
containers freely.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.trace.columns import TraceColumns
from repro.trace.event import Event, EventKind

Node = Tuple[int, int]


class CriticalSection:
    """A lock-protected region ``[acquire, release]`` of one thread."""

    __slots__ = ("lock", "thread", "acquire", "release")

    def __init__(self, lock, thread: int, acquire: Event,
                 release: Optional[Event]) -> None:
        self.lock = lock
        self.thread = thread
        self.acquire = acquire
        self.release = release

    def contains(self, event: Event) -> bool:
        """Whether ``event`` (same thread) executes while the lock is held."""
        if event.thread != self.thread:
            return False
        if event.index < self.acquire.index:
            return False
        return self.release is None or event.index <= self.release.index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = self.release.index if self.release else "?"
        return f"CS(lock={self.lock}, thread={self.thread}, [{self.acquire.index}, {end}])"


class Trace:
    """An execution trace: a totally ordered sequence of events.

    Events may be supplied pre-built or appended through the convenience
    constructors (:meth:`read`, :meth:`write`, :meth:`acquire`, ...), which
    assign the per-thread sequence id automatically.
    """

    def __init__(self, events: Iterable[Event] = (), name: str = "trace") -> None:
        self.name = name
        self._events: List[Event] = []
        self._per_thread: Dict[int, List[Event]] = defaultdict(list)
        self._next_index: Dict[int, int] = defaultdict(int)
        # Incrementally maintained derived indexes (see class docstring).
        self._accesses_by_variable: Dict = defaultdict(list)
        self._writes_by_variable: Dict = defaultdict(list)
        self._reads_from: Dict[Event, Optional[Event]] = {}
        self._last_write: Dict = {}
        self._held_now: Dict[int, frozenset] = defaultdict(frozenset)
        self._held_map: Dict[Node, frozenset] = {}
        self._sections: List[CriticalSection] = []
        self._open_sections: Dict[Tuple[int, object], CriticalSection] = {}
        self._bad_release: Optional[Event] = None
        self._columns: Optional[TraceColumns] = None
        for event in events:
            self._append_existing(event)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _append_existing(self, event: Event) -> None:
        expected = self._next_index[event.thread]
        if event.index != expected:
            raise TraceError(
                f"event {event} has index {event.index}, expected {expected} "
                f"for thread {event.thread}"
            )
        self._events.append(event)
        self._per_thread[event.thread].append(event)
        self._next_index[event.thread] = expected + 1
        self._index_event(event)

    def _index_event(self, event: Event) -> None:
        """Advance every derived index by one event (O(1) amortised)."""
        if event.is_access:
            self._accesses_by_variable[event.variable].append(event)
        # Reads observe the last write *before* this event, so an RMW (both
        # read and write) must look up its writer before registering itself.
        if event.is_read:
            self._reads_from[event] = self._last_write.get(event.variable)
        if event.is_write:
            self._writes_by_variable[event.variable].append(event)
            self._last_write[event.variable] = event
        if event.kind is EventKind.ACQUIRE:
            self._held_now[event.thread] = (
                self._held_now[event.thread] | {event.variable})
            section = CriticalSection(event.variable, event.thread, event, None)
            self._open_sections[(event.thread, event.variable)] = section
            self._sections.append(section)
        elif event.kind is EventKind.RELEASE:
            self._held_now[event.thread] = (
                self._held_now[event.thread] - {event.variable})
            section = self._open_sections.pop(
                (event.thread, event.variable), None)
            if section is None:
                if self._bad_release is None:
                    self._bad_release = event
            else:
                section.release = event
        self._held_map[event.node] = self._held_now[event.thread]

    def add(self, event: Event) -> Event:
        """Append a pre-built event (its index must be the next one of its
        thread) and return it.  This is the streaming ingestion entry point:
        every derived index is advanced incrementally."""
        self._append_existing(event)
        return event

    def append(self, thread: int, kind: EventKind, **metadata) -> Event:
        """Append a new event for ``thread`` and return it."""
        event = Event(thread=thread, index=self._next_index[thread], kind=kind,
                      **metadata)
        self._append_existing(event)
        return event

    # Convenience constructors -- one per event kind used by the analyses.
    def read(self, thread: int, variable, value=None, **kw) -> Event:
        return self.append(thread, EventKind.READ, variable=variable, value=value, **kw)

    def write(self, thread: int, variable, value=None, **kw) -> Event:
        return self.append(thread, EventKind.WRITE, variable=variable, value=value, **kw)

    def acquire(self, thread: int, lock) -> Event:
        return self.append(thread, EventKind.ACQUIRE, variable=lock)

    def release(self, thread: int, lock) -> Event:
        return self.append(thread, EventKind.RELEASE, variable=lock)

    def fork(self, thread: int, child: int) -> Event:
        return self.append(thread, EventKind.FORK, target=child)

    def join(self, thread: int, child: int) -> Event:
        return self.append(thread, EventKind.JOIN, target=child)

    def alloc(self, thread: int, address) -> Event:
        return self.append(thread, EventKind.ALLOC, variable=address)

    def free(self, thread: int, address) -> Event:
        return self.append(thread, EventKind.FREE, variable=address)

    def atomic_read(self, thread: int, variable, value=None, memory_order=None) -> Event:
        return self.append(thread, EventKind.ATOMIC_READ, variable=variable,
                           value=value, memory_order=memory_order, atomic=True)

    def atomic_write(self, thread: int, variable, value=None, memory_order=None) -> Event:
        return self.append(thread, EventKind.ATOMIC_WRITE, variable=variable,
                           value=value, memory_order=memory_order, atomic=True)

    def atomic_rmw(self, thread: int, variable, value=None, memory_order=None) -> Event:
        return self.append(thread, EventKind.ATOMIC_RMW, variable=variable,
                           value=value, memory_order=memory_order, atomic=True)

    def begin(self, thread: int, operation: str, argument=None) -> Event:
        return self.append(thread, EventKind.BEGIN, operation=operation,
                           argument=argument)

    def end(self, thread: int, operation: str, result=None) -> Event:
        return self.append(thread, EventKind.END, operation=operation, result=result)

    # ------------------------------------------------------------------ #
    # Basic views
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, position: int) -> Event:
        return self._events[position]

    @property
    def events(self) -> Sequence[Event]:
        """Events in observed (total) order."""
        return tuple(self._events)

    def iter_from(self, position: int = 0) -> Iterator[Event]:
        """Iterate events in observed order starting at ``position``.

        The iterator is *live*: it indexes into the growing event list, so a
        consumer may interleave iteration with appends and will see events
        appended after it was created.  (It stops when it catches up; the
        tail-following loop belongs to the stream sources, which know how to
        wait for more input.)
        """
        while position < len(self._events):
            yield self._events[position]
            position += 1

    @property
    def threads(self) -> List[int]:
        """Sorted list of thread identifiers appearing in the trace."""
        return sorted(self._per_thread)

    @property
    def num_threads(self) -> int:
        return len(self._per_thread)

    def thread_events(self, thread: int) -> Sequence[Event]:
        """Events of one thread in program order."""
        return tuple(self._per_thread.get(thread, ()))

    def thread_length(self, thread: int) -> int:
        """Number of events of ``thread``."""
        return len(self._per_thread.get(thread, ()))

    @property
    def max_thread_length(self) -> int:
        """Length of the longest per-thread chain (capacity hint for
        partial-order backends)."""
        return max((len(v) for v in self._per_thread.values()), default=0)

    def event_at(self, node: Node) -> Event:
        """Return the event identified by a ``(thread, index)`` node."""
        thread, index = node
        try:
            return self._per_thread[thread][index]
        except (KeyError, IndexError):
            raise TraceError(f"no event at node {node}") from None

    def columns(self) -> TraceColumns:
        """Cached columnar view of the trace (see
        :class:`~repro.trace.columns.TraceColumns`).

        The view is built lazily on first access and advanced incrementally
        afterwards: events appended since the previous call are encoded in
        O(new events), so both batch analyses and the streaming engine's
        growing live trace can call this at every flush point for free.
        """
        columns = self._columns
        if columns is None:
            columns = self._columns = TraceColumns(self._events)
        return columns.sync()

    # ------------------------------------------------------------------ #
    # Derived indexes used by the analyses
    # ------------------------------------------------------------------ #
    def accesses_by_variable(self) -> Dict:
        """Group access events by the variable they touch."""
        return {variable: list(events)
                for variable, events in self._accesses_by_variable.items()}

    def writes_by_variable(self) -> Dict:
        return {variable: list(events)
                for variable, events in self._writes_by_variable.items()}

    def critical_sections(self) -> List[CriticalSection]:
        """All critical sections, in observed acquire order.

        Raises
        ------
        TraceError
            If a thread releases a lock it does not hold (raised here, not
            at append time, so a malformed trace can still be built and
            inspected).
        """
        if self._bad_release is not None:
            event = self._bad_release
            raise TraceError(
                f"thread {event.thread} releases lock {event.variable} "
                "without holding it"
            )
        # Fresh objects per call: the internal index keeps mutating as the
        # trace grows (an open section's release is filled in later), and
        # callers are allowed to mutate what they get back.
        return [CriticalSection(section.lock, section.thread,
                                section.acquire, section.release)
                for section in self._sections]

    def locks_held_at(self, event: Event) -> frozenset:
        """Set of locks held by ``event.thread`` when ``event`` executes.

        Events of this trace are answered in O(1) from the incrementally
        maintained lock-set map; an event whose node is not in the trace
        (e.g. a hypothetical one) falls back to scanning its thread prefix.
        """
        held = self._held_map.get(event.node)
        if held is not None:
            return held
        current = set()
        for other in self._per_thread[event.thread]:
            if other.index > event.index:
                break
            if other.kind is EventKind.ACQUIRE:
                current.add(other.variable)
            elif other.kind is EventKind.RELEASE:
                current.discard(other.variable)
        return frozenset(current)

    def locks_held_map(self) -> Dict[Node, frozenset]:
        """Locks held at every event (maintained incrementally).

        Analyses that query lock sets for many events should use this map
        instead of calling :meth:`locks_held_at` repeatedly.
        """
        return dict(self._held_map)

    def reads_from(self) -> Dict[Event, Optional[Event]]:
        """The observed reads-from map: each read maps to the last write to
        the same variable preceding it in the trace order (or ``None``)."""
        return dict(self._reads_from)

    def fork_join_edges(self) -> List[Tuple[Node, Node]]:
        """Cross-thread ordering edges induced by fork/join events.

        ``fork(parent -> child)`` orders the fork event before the first
        event of the child; ``join(parent <- child)`` orders the last event
        of the child before the join event.
        """
        edges: List[Tuple[Node, Node]] = []
        for event in self._events:
            if event.kind is EventKind.FORK and event.target in self._per_thread:
                first = self._per_thread[event.target][0]
                edges.append((event.node, first.node))
            elif event.kind is EventKind.JOIN and event.target in self._per_thread:
                last = self._per_thread[event.target][-1]
                edges.append((last.node, event.node))
        return edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(name={self.name!r}, events={len(self._events)}, "
            f"threads={self.num_threads})"
        )
