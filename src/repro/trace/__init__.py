"""Trace substrate: event model, trace container, serialization and
synthetic workload generators."""

from repro.trace.columns import KIND_BY_CODE, KIND_CODES, TraceColumns
from repro.trace.event import (
    ACCESS_KINDS,
    READ_KINDS,
    WRITE_KINDS,
    Event,
    EventKind,
    MemoryOrder,
)
from repro.trace.binfmt import (
    STC_MAGIC,
    STC_VERSION,
    LazyTrace,
    decode_trace,
    encode_trace,
    read_trace_stc,
    write_trace_stc,
)
from repro.trace.formats import dump_trace, dumps_trace, load_trace, loads_trace
from repro.trace.io import read_trace, save_trace, sniff_format, trace_format
from repro.trace.metrics import TraceMetrics, compute_metrics
from repro.trace.generators import (
    GENERATOR_REGISTRY,
    build_trace,
    c11_trace,
    deadlock_trace,
    get_generator,
    history_trace,
    memory_trace,
    racy_trace,
    random_cross_edges,
    register_generator,
    tso_trace,
)
from repro.trace.trace import CriticalSection, Trace

__all__ = [
    "ACCESS_KINDS",
    "CriticalSection",
    "Event",
    "EventKind",
    "GENERATOR_REGISTRY",
    "KIND_BY_CODE",
    "KIND_CODES",
    "LazyTrace",
    "MemoryOrder",
    "READ_KINDS",
    "STC_MAGIC",
    "STC_VERSION",
    "Trace",
    "TraceColumns",
    "TraceMetrics",
    "WRITE_KINDS",
    "build_trace",
    "c11_trace",
    "compute_metrics",
    "deadlock_trace",
    "decode_trace",
    "dump_trace",
    "dumps_trace",
    "encode_trace",
    "get_generator",
    "history_trace",
    "load_trace",
    "loads_trace",
    "memory_trace",
    "racy_trace",
    "random_cross_edges",
    "read_trace",
    "read_trace_stc",
    "register_generator",
    "save_trace",
    "sniff_format",
    "tso_trace",
    "trace_format",
    "write_trace_stc",
]
