"""Trace substrate: event model, trace container, serialization and
synthetic workload generators."""

from repro.trace.columns import KIND_BY_CODE, KIND_CODES, TraceColumns
from repro.trace.event import (
    ACCESS_KINDS,
    READ_KINDS,
    WRITE_KINDS,
    Event,
    EventKind,
    MemoryOrder,
)
from repro.trace.formats import dump_trace, dumps_trace, load_trace, loads_trace
from repro.trace.metrics import TraceMetrics, compute_metrics
from repro.trace.generators import (
    GENERATOR_REGISTRY,
    build_trace,
    c11_trace,
    deadlock_trace,
    get_generator,
    history_trace,
    memory_trace,
    racy_trace,
    random_cross_edges,
    register_generator,
    tso_trace,
)
from repro.trace.trace import CriticalSection, Trace

__all__ = [
    "ACCESS_KINDS",
    "CriticalSection",
    "Event",
    "EventKind",
    "GENERATOR_REGISTRY",
    "KIND_BY_CODE",
    "KIND_CODES",
    "MemoryOrder",
    "READ_KINDS",
    "Trace",
    "TraceColumns",
    "TraceMetrics",
    "WRITE_KINDS",
    "build_trace",
    "c11_trace",
    "compute_metrics",
    "deadlock_trace",
    "get_generator",
    "register_generator",
    "dump_trace",
    "dumps_trace",
    "history_trace",
    "load_trace",
    "loads_trace",
    "memory_trace",
    "racy_trace",
    "random_cross_edges",
    "tso_trace",
]
