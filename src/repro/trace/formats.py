"""Plain-text serialization of traces.

The artifact accompanying the paper distributes its traces in a simple
line-oriented "STD"-like format.  We provide a comparable format so users
can persist generated workloads, inspect them, and feed externally produced
traces into the analyses:

.. code-block:: text

    # one event per line, observed order, '|'-separated fields
    thread|kind|key=value|key=value|...

Only fields whose value is set are emitted.  Values are stored as
``repr``-like literals for ints and strings; anything else round-trips as a
string.  Characters that would corrupt the line structure (``|``, newlines,
and the escape character itself) are escaped on write and unescaped on
read, so arbitrary variable names and values survive a round-trip.

Files whose name ends in ``.gz`` are transparently compressed: every
function that accepts a path (``dump_trace``, ``load_trace``, and through
them the ``analyze``/``sweep``/``watch`` CLI commands) reads and writes
gzip when the suffix asks for it.

Besides whole-trace (de)serialization this module exposes the line-level
primitives -- :func:`format_event`, :func:`parse_trace_line`,
:func:`open_trace` -- that the streaming layer (:mod:`repro.stream`) uses to
tail files incrementally and to checkpoint event buffers.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Union

from repro.errors import TraceError
from repro.trace.event import Event, EventKind, MemoryOrder
from repro.trace.trace import Trace

_FIELDS = (
    "variable",
    "value",
    "target",
    "memory_order",
    "operation",
    "argument",
    "result",
    "atomic",
)

#: Escape table for characters that are structural in the line format.  A
#: literal ``|`` would split the field, a newline would split the line, and
#: ``\\`` is the escape character itself.  ``\r`` is escaped too so traces
#: survive universal-newline reading unchanged.
_ESCAPE_TABLE = {
    ord("\\"): "\\\\",
    ord("|"): "\\p",
    ord("\n"): "\\n",
    ord("\r"): "\\r",
}

_UNESCAPE_TABLE = {"\\": "\\", "p": "|", "n": "\n", "r": "\r"}

#: Precomputed value->member tables.  Calling ``EventKind(text)`` routes
#: through ``EnumMeta.__call__`` and its missing-value machinery on every
#: event line, which is measurable on large ``.std`` loads; a dict hit is
#: one hash lookup.
_KIND_BY_VALUE = {kind.value: kind for kind in EventKind}
_MEMORY_ORDER_BY_VALUE = {order.value: order for order in MemoryOrder}


def _escape(text: str) -> str:
    return text.translate(_ESCAPE_TABLE)


def _unescape(text: str) -> str:
    if "\\" not in text:
        return text
    out: List[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if char == "\\" and i + 1 < len(text):
            out.append(_UNESCAPE_TABLE.get(text[i + 1], text[i + 1]))
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)


def _encode_value(value) -> str:
    if isinstance(value, bool):
        return f"bool:{int(value)}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, MemoryOrder):
        return f"mo:{value.value}"
    return "str:" + _escape(str(value))


def _decode_value(text: str):
    prefix, _, payload = text.partition(":")
    # Typed payloads tolerate incidental whitespace (e.g. a hand-edited
    # line with trailing spaces); ``str`` payloads are taken verbatim --
    # their whitespace is data.
    if prefix == "int":
        return int(payload)
    if prefix == "bool":
        return bool(int(payload))
    if prefix == "mo":
        stripped = payload.strip()
        order = _MEMORY_ORDER_BY_VALUE.get(stripped)
        # Fall back to the enum call for unknown payloads so the error
        # behaviour (ValueError) is unchanged.
        return order if order is not None else MemoryOrder(stripped)
    if prefix == "str":
        return _unescape(payload)
    raise TraceError(f"cannot decode field value {text!r}")


def _is_gzip_path(path: Union[str, Path]) -> bool:
    return str(path).endswith(".gz")


def open_trace(path: Union[str, Path], mode: str = "r") -> TextIO:
    """Open a trace file for text I/O, transparently gzipped for ``.gz``.

    ``mode`` is ``"r"``, ``"w"`` or ``"a"`` (text is implied; encoding is
    always UTF-8).  Gzip members are written with a zeroed mtime and no
    embedded filename, so the same trace serialises to byte-identical
    ``.std.gz`` output wherever and whenever it is written -- the property
    the generator-determinism tests and the fuzzer's reproducibility
    contract pin down.
    """
    if mode not in ("r", "w", "a"):
        raise TraceError(f"unsupported trace file mode {mode!r}")
    if _is_gzip_path(path):
        if mode == "r":
            return gzip.open(path, "rt", encoding="utf-8")
        raw = open(path, mode + "b")
        try:
            binary = gzip.GzipFile(filename="", mode=mode + "b",
                                   fileobj=raw, mtime=0)
        except Exception:  # pragma: no cover - constructor cannot realistically fail
            raw.close()
            raise
        return io.TextIOWrapper(_OwningGzipWriter(binary, raw),
                                encoding="utf-8")
    return open(path, mode, encoding="utf-8")


class _OwningGzipWriter(io.BufferedIOBase):
    """Minimal write-only wrapper closing both the gzip member and the
    underlying file object (``GzipFile`` with an explicit ``fileobj`` leaves
    the raw file open on close)."""

    def __init__(self, member: gzip.GzipFile, raw) -> None:
        self._member = member
        self._raw = raw

    def write(self, data) -> int:
        return self._member.write(data)

    def writable(self) -> bool:
        return True

    def flush(self) -> None:
        if not self._member.closed:
            self._member.flush()

    def close(self) -> None:
        if self.closed:  # pragma: no cover - double-close guard
            return
        try:
            try:
                self._member.close()
            finally:
                # Close the raw fd even when flushing the final compressed
                # block fails (e.g. disk full) -- leaking it until GC would
                # exhaust fds in long sweeps.
                self._raw.close()
        finally:
            super().close()


# --------------------------------------------------------------------------- #
# Line-level primitives
# --------------------------------------------------------------------------- #
def format_header(name: str) -> str:
    """The ``# trace NAME`` header line (without trailing newline)."""
    return "# trace " + _escape(name)


def format_event(event: Event) -> str:
    """Serialise one event to its line (without trailing newline)."""
    parts = [str(event.thread), event.kind.value]
    for field in _FIELDS:
        value = getattr(event, field)
        if value is None or (field == "atomic" and value is False):
            continue
        parts.append(f"{field}={_encode_value(value)}")
    return "|".join(parts)


def parse_header(line: str) -> Optional[str]:
    """Return the trace name if ``line`` is a header comment, else ``None``.

    Only line terminators and leading indentation are shed -- edge
    whitespace *inside* the name is data and round-trips, like string
    field values do.
    """
    line = line.lstrip().rstrip("\r\n")
    if line.startswith("# trace "):
        return _unescape(line[len("# trace "):])
    return None


def parse_trace_line(line: str, next_index: Dict[int, int],
                     line_number: int = 0) -> Optional[Event]:
    """Parse one line into an :class:`Event`, or ``None`` for blank/comment.

    ``next_index`` maps thread id to the next per-thread sequence id and is
    advanced in place, so a caller feeding consecutive lines (a whole file,
    or a tailed stream) assigns the same indexes :func:`load_trace` would.
    """
    # Blank/comment detection ignores surrounding whitespace, but the event
    # line itself only sheds its terminators: trailing spaces or tabs in
    # the final field are string-value *data* and must survive.
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    line = line.strip("\r\n")
    parts = line.split("|")
    if len(parts) < 2:
        raise TraceError(f"malformed trace line {line_number}: {line!r}")
    try:
        thread = int(parts[0])
    except ValueError:
        raise TraceError(
            f"malformed thread id {parts[0]!r} on line {line_number}"
        ) from None
    kind = _KIND_BY_VALUE.get(parts[1])
    if kind is None:
        raise TraceError(
            f"unknown event kind {parts[1]!r} on line {line_number}"
        )
    metadata = {}
    for part in parts[2:]:
        field, _, encoded = part.partition("=")
        if field not in _FIELDS:
            raise TraceError(f"unknown field {field!r} on line {line_number}")
        metadata[field] = _decode_value(encoded)
    index = next_index.get(thread, 0)
    next_index[thread] = index + 1
    return Event(thread=thread, index=index, kind=kind, **metadata)


# --------------------------------------------------------------------------- #
# Whole-trace (de)serialization
# --------------------------------------------------------------------------- #
def dump_trace(trace: Trace, destination: Union[str, Path, TextIO]) -> None:
    """Serialise ``trace`` to a file path or text stream.

    Paths ending in ``.gz`` are written gzip-compressed.
    """
    if isinstance(destination, (str, Path)):
        with open_trace(destination, "w") as stream:
            dump_trace(trace, stream)
        return
    destination.write(format_header(trace.name) + "\n")
    for event in trace:
        destination.write(format_event(event) + "\n")


def dumps_trace(trace: Trace) -> str:
    """Serialise ``trace`` to a string."""
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(source: Union[str, Path, TextIO], name: str = "trace") -> Trace:
    """Load a trace from a file path or text stream.

    Paths ending in ``.gz`` are read gzip-compressed.
    """
    if isinstance(source, (str, Path)):
        with open_trace(source, "r") as stream:
            return load_trace(stream, name=name)
    events: List[Event] = []
    next_index: Dict[int, int] = {}
    trace_name = name
    for line_number, raw_line in enumerate(source, start=1):
        header = parse_header(raw_line)
        if header is not None:
            trace_name = header
            continue
        event = parse_trace_line(raw_line, next_index, line_number)
        if event is not None:
            events.append(event)
    return Trace(events, name=trace_name)


def loads_trace(text: str, name: str = "trace") -> Trace:
    """Load a trace from a string produced by :func:`dumps_trace`."""
    return load_trace(io.StringIO(text), name=name)
