"""Plain-text serialization of traces.

The artifact accompanying the paper distributes its traces in a simple
line-oriented "STD"-like format.  We provide a comparable format so users
can persist generated workloads, inspect them, and feed externally produced
traces into the analyses:

.. code-block:: text

    # one event per line, observed order, '|'-separated fields
    thread|kind|key=value|key=value|...

Only fields whose value is set are emitted.  Values are stored as
``repr``-like literals for ints and strings; anything else round-trips as a
string.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Union

from repro.errors import TraceError
from repro.trace.event import Event, EventKind, MemoryOrder
from repro.trace.trace import Trace

_FIELDS = (
    "variable",
    "value",
    "target",
    "memory_order",
    "operation",
    "argument",
    "result",
    "atomic",
)


def _encode_value(value) -> str:
    if isinstance(value, bool):
        return f"bool:{int(value)}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, MemoryOrder):
        return f"mo:{value.value}"
    return f"str:{value}"


def _decode_value(text: str):
    prefix, _, payload = text.partition(":")
    if prefix == "int":
        return int(payload)
    if prefix == "bool":
        return bool(int(payload))
    if prefix == "mo":
        return MemoryOrder(payload)
    if prefix == "str":
        return payload
    raise TraceError(f"cannot decode field value {text!r}")


def dump_trace(trace: Trace, destination: Union[str, Path, TextIO]) -> None:
    """Serialise ``trace`` to a file path or text stream."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as stream:
            dump_trace(trace, stream)
        return
    destination.write(f"# trace {trace.name}\n")
    for event in trace:
        parts = [str(event.thread), event.kind.value]
        for field in _FIELDS:
            value = getattr(event, field)
            if value is None or (field == "atomic" and value is False):
                continue
            parts.append(f"{field}={_encode_value(value)}")
        destination.write("|".join(parts) + "\n")


def dumps_trace(trace: Trace) -> str:
    """Serialise ``trace`` to a string."""
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(source: Union[str, Path, TextIO], name: str = "trace") -> Trace:
    """Load a trace from a file path or text stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as stream:
            return load_trace(stream, name=name)
    events: List[Event] = []
    per_thread_counts = {}
    trace_name = name
    for line_number, raw_line in enumerate(source, start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# trace "):
                trace_name = line[len("# trace "):].strip()
            continue
        parts = line.split("|")
        if len(parts) < 2:
            raise TraceError(f"malformed trace line {line_number}: {line!r}")
        thread = int(parts[0])
        try:
            kind = EventKind(parts[1])
        except ValueError:
            raise TraceError(
                f"unknown event kind {parts[1]!r} on line {line_number}"
            ) from None
        metadata = {}
        for part in parts[2:]:
            field, _, encoded = part.partition("=")
            if field not in _FIELDS:
                raise TraceError(f"unknown field {field!r} on line {line_number}")
            metadata[field] = _decode_value(encoded)
        index = per_thread_counts.get(thread, 0)
        per_thread_counts[thread] = index + 1
        events.append(Event(thread=thread, index=index, kind=kind, **metadata))
    return Trace(events, name=trace_name)


def loads_trace(text: str, name: str = "trace") -> Trace:
    """Load a trace from a string produced by :func:`dumps_trace`."""
    return load_trace(io.StringIO(text), name=name)
