"""Synthetic workload generators.

The paper evaluates CSSTs on traces of real programs (RoadRunner recordings
of Java benchmarks, C11Tester executions, pbzip2/x264 runs, ...).  Those
traces and their instrumentation toolchains are not redistributable, so this
module provides parameterised generators producing traces with the same
*structural* characteristics the paper reports for each dataset: thread
count ``T``, event count ``N``, the mix of synchronisation and data events,
and the resulting cross-chain density ``q``.  Every generator is
deterministic given its ``seed`` so that benchmarks are reproducible.

Each generator targets one of the analyses in :mod:`repro.analyses`:

=========================  =====================================
Generator                   Analysis (paper table)
=========================  =====================================
:func:`racy_trace`          race prediction (Table 1)
:func:`deadlock_trace`      deadlock prediction (Table 2)
:func:`memory_trace`        memory-bug / use-after-free (Tables 3, 5)
:func:`tso_trace`           x86-TSO consistency (Table 4)
:func:`c11_trace`           C11 race detection (Table 6)
:func:`history_trace`       linearizability root-causing (Table 7)
:func:`random_cross_edges`  scalability microbenchmark (Figure 11)
=========================  =====================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.trace.event import MemoryOrder
from repro.trace.trace import Trace

Node = Tuple[int, int]


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def _round_robin_threads(rng: random.Random, num_threads: int,
                         events_per_thread: int) -> Iterator[int]:
    """Yield a thread schedule: mostly bursts, interleaved at random."""
    remaining = {t: events_per_thread for t in range(num_threads)}
    active = list(remaining)
    while active:
        thread = rng.choice(active)
        burst = min(remaining[thread], rng.randint(1, 6))
        for _ in range(burst):
            yield thread
        remaining[thread] -= burst
        if remaining[thread] == 0:
            active.remove(thread)


def racy_trace(num_threads: int = 4, events_per_thread: int = 200,
               num_variables: int = 10, num_locks: int = 3,
               protected_fraction: float = 0.6, write_fraction: float = 0.4,
               seed: Optional[int] = 0, name: str = "racy") -> Trace:
    """Shared-memory workload with both protected and unprotected accesses.

    A ``protected_fraction`` of accesses happen inside critical sections of
    a randomly chosen lock, which creates release/acquire orderings; the
    rest are unprotected and give the race-prediction analysis candidate
    pairs to examine.
    """
    _validate_positive(num_threads=num_threads, events_per_thread=events_per_thread,
                       num_variables=num_variables)
    rng = _rng(seed)
    trace = Trace(name=name)
    budget = {t: events_per_thread for t in range(num_threads)}
    active = [t for t in range(num_threads) if budget[t] > 0]
    while active:
        thread = rng.choice(active)
        variable = f"x{rng.randrange(num_variables)}"
        is_write = rng.random() < write_fraction
        protected = num_locks > 0 and rng.random() < protected_fraction
        if protected and budget[thread] >= 3:
            lock = f"l{rng.randrange(num_locks)}"
            trace.acquire(thread, lock)
            _emit_access(trace, thread, variable, is_write, rng)
            trace.release(thread, lock)
            budget[thread] -= 3
        else:
            _emit_access(trace, thread, variable, is_write, rng)
            budget[thread] -= 1
        if budget[thread] <= 0:
            active.remove(thread)
    return trace


def _emit_access(trace: Trace, thread: int, variable: str, is_write: bool,
                 rng: random.Random) -> None:
    if is_write:
        trace.write(thread, variable, value=rng.randrange(1000))
    else:
        trace.read(thread, variable)


def deadlock_trace(num_threads: int = 4, events_per_thread: int = 200,
                   num_locks: int = 6, nesting_fraction: float = 0.4,
                   inversion_fraction: float = 0.1, seed: Optional[int] = 0,
                   name: str = "deadlock") -> Trace:
    """Lock-heavy workload with nested critical sections.

    Most nested acquisitions follow a global lock order (lower lock id
    first); a small ``inversion_fraction`` inverts it, creating the
    lock-order cycles that the deadlock-prediction analysis hunts for.
    """
    _validate_positive(num_threads=num_threads, events_per_thread=events_per_thread,
                       num_locks=num_locks)
    rng = _rng(seed)
    trace = Trace(name=name)
    budget = {t: events_per_thread for t in range(num_threads)}
    active = [t for t in range(num_threads) if budget[t] > 0]
    while active:
        thread = rng.choice(active)
        outer, inner = rng.sample(range(num_locks), 2) if num_locks >= 2 else (0, 0)
        nested = rng.random() < nesting_fraction and num_locks >= 2
        if nested and rng.random() >= inversion_fraction:
            outer, inner = min(outer, inner), max(outer, inner)
        variable = f"x{rng.randrange(max(2, num_locks))}"
        if nested and budget[thread] >= 6:
            trace.acquire(thread, f"l{outer}")
            trace.write(thread, variable, value=rng.randrange(100))
            trace.acquire(thread, f"l{inner}")
            trace.read(thread, variable)
            trace.release(thread, f"l{inner}")
            trace.release(thread, f"l{outer}")
            budget[thread] -= 6
        elif budget[thread] >= 3:
            trace.acquire(thread, f"l{outer}")
            trace.read(thread, variable)
            trace.release(thread, f"l{outer}")
            budget[thread] -= 3
        else:
            trace.read(thread, variable)
            budget[thread] -= 1
        if budget[thread] <= 0:
            active.remove(thread)
    return trace


def memory_trace(num_threads: int = 4, events_per_thread: int = 200,
                 num_objects: int = 20, escape_fraction: float = 0.5,
                 use_after_free_window: int = 4, seed: Optional[int] = 0,
                 name: str = "memory") -> Trace:
    """Heap-lifecycle workload: alloc / use / free across threads.

    Objects are allocated by one thread; an ``escape_fraction`` of them are
    also used by other threads, which is what creates candidate
    use-after-free and double-free pairs for the memory-bug analyses.
    """
    _validate_positive(num_threads=num_threads, events_per_thread=events_per_thread,
                       num_objects=num_objects)
    rng = _rng(seed)
    trace = Trace(name=name)
    addresses = [f"obj{i}" for i in range(num_objects)]
    allocated: List[str] = []
    # Insertion-ordered on purpose: iterating a *set* of strings here would
    # make the trace depend on the per-process hash seed, breaking the
    # "deterministic given its seed" contract across interpreter runs.
    freed: List[str] = []
    next_address = 0
    budget = {t: events_per_thread for t in range(num_threads)}
    active = [t for t in range(num_threads) if budget[t] > 0]
    lock = "heap_lock"
    while active:
        thread = rng.choice(active)
        roll = rng.random()
        if (roll < 0.2 and next_address < num_objects) or not allocated:
            if next_address >= num_objects:
                # Nothing left to allocate but nothing live either: spin on a
                # plain read so the budget still drains.
                trace.read(thread, "spin")
                budget[thread] -= 1
            else:
                address = addresses[next_address]
                next_address += 1
                trace.alloc(thread, address)
                allocated.append(address)
                budget[thread] -= 1
        elif roll < 0.35 and allocated:
            address = allocated.pop(rng.randrange(len(allocated)))
            freed.append(address)
            trace.free(thread, address)
            budget[thread] -= 1
        else:
            pool = allocated if (rng.random() < escape_fraction or not freed) else freed
            if not pool:
                pool = allocated or freed
            address = rng.choice(pool) if pool else "spin"
            protected = rng.random() < 0.3
            if protected and budget[thread] >= 3:
                trace.acquire(thread, lock)
                _emit_access(trace, thread, address, rng.random() < 0.5, rng)
                trace.release(thread, lock)
                budget[thread] -= 3
            else:
                _emit_access(trace, thread, address, rng.random() < 0.5, rng)
                budget[thread] -= 1
        if budget[thread] <= 0:
            active.remove(thread)
    return trace


def tso_trace(num_threads: int = 3, events_per_thread: int = 200,
              num_variables: int = 4, write_fraction: float = 0.5,
              stale_read_fraction: float = 0.15, seed: Optional[int] = 0,
              name: str = "tso") -> Trace:
    """Write/read workload annotated with values, for TSO consistency checks.

    Every write stores a unique value; each read observes either the most
    recent write to its variable (in trace order) or, with probability
    ``stale_read_fraction``, a slightly older one -- the kind of reordering
    x86-TSO store buffering allows.  The consistency checker then has to
    reconstruct a witness order.
    """
    _validate_positive(num_threads=num_threads, events_per_thread=events_per_thread,
                       num_variables=num_variables)
    rng = _rng(seed)
    trace = Trace(name=name)
    next_value = 1
    recent_writes: dict = {f"v{i}": [0] for i in range(num_variables)}
    for thread in _round_robin_threads(rng, num_threads, events_per_thread):
        variable = f"v{rng.randrange(num_variables)}"
        if rng.random() < write_fraction:
            trace.atomic_write(thread, variable, value=next_value,
                               memory_order=MemoryOrder.SEQ_CST)
            recent_writes[variable].append(next_value)
            if len(recent_writes[variable]) > 4:
                recent_writes[variable].pop(0)
            next_value += 1
        else:
            history = recent_writes[variable]
            if len(history) > 1 and rng.random() < stale_read_fraction:
                value = rng.choice(history[:-1])
            else:
                value = history[-1]
            trace.atomic_read(thread, variable, value=value,
                              memory_order=MemoryOrder.SEQ_CST)
    return trace


def c11_trace(num_threads: int = 4, events_per_thread: int = 200,
              num_atomic_variables: int = 4, num_plain_variables: int = 8,
              atomic_fraction: float = 0.5, rmw_fraction: float = 0.2,
              release_acquire_fraction: float = 0.6, seed: Optional[int] = 0,
              name: str = "c11") -> Trace:
    """Mixed atomic / plain access workload in the style of C11Tester.

    Atomic operations mostly use release/acquire ordering (which creates
    synchronizes-with edges), occasionally relaxed; plain accesses provide
    the data-race candidates.
    """
    _validate_positive(num_threads=num_threads, events_per_thread=events_per_thread,
                       num_atomic_variables=num_atomic_variables,
                       num_plain_variables=num_plain_variables)
    rng = _rng(seed)
    trace = Trace(name=name)
    next_value = 1
    for thread in _round_robin_threads(rng, num_threads, events_per_thread):
        if rng.random() < atomic_fraction:
            variable = f"a{rng.randrange(num_atomic_variables)}"
            strong = rng.random() < release_acquire_fraction
            if rng.random() < rmw_fraction:
                order = MemoryOrder.ACQ_REL if strong else MemoryOrder.RELAXED
                trace.atomic_rmw(thread, variable, value=next_value, memory_order=order)
                next_value += 1
            elif rng.random() < 0.5:
                order = MemoryOrder.RELEASE if strong else MemoryOrder.RELAXED
                trace.atomic_write(thread, variable, value=next_value, memory_order=order)
                next_value += 1
            else:
                order = MemoryOrder.ACQUIRE if strong else MemoryOrder.RELAXED
                trace.atomic_read(thread, variable, memory_order=order)
        else:
            variable = f"p{rng.randrange(num_plain_variables)}"
            _emit_access(trace, thread, variable, rng.random() < 0.4, rng)
    return trace


def history_trace(num_threads: int = 3, operations_per_thread: int = 40,
                  data_structure: str = "set", key_range: int = 8,
                  inject_violation: bool = True, overlap: float = 0.6,
                  seed: Optional[int] = 0, name: str = "history") -> Trace:
    """Concurrent-object history (method begin/end events).

    Supported ``data_structure`` values: ``"set"`` (add / remove /
    contains), ``"queue"`` (enqueue / dequeue) and ``"register"``
    (write / read).  Operations *overlap*: a begun operation stays pending
    for a while before its end event is emitted (controlled by ``overlap``:
    higher values delay responses longer), which is what gives the
    linearizability search real non-determinism to explore.  Results are
    produced by a sequential specification linearised at the invocation
    point, so the generated history is linearizable; when
    ``inject_violation`` is set, one boolean result is flipped so that the
    history is not, giving the root-causing analysis something to explain.
    """
    _validate_positive(num_threads=num_threads,
                       operations_per_thread=operations_per_thread,
                       key_range=key_range)
    if data_structure not in ("set", "queue", "register"):
        raise TraceError(f"unknown data structure {data_structure!r}")
    if not 0.0 <= overlap < 1.0:
        raise TraceError(f"overlap must be in [0, 1), got {overlap}")
    rng = _rng(seed)
    trace = Trace(name=name)
    state_set: set = set()
    state_queue: List[int] = []
    state_register = 0
    remaining = {t: operations_per_thread for t in range(num_threads)}
    pending: dict = {}  # thread -> (operation, result)
    violation_slot = (
        rng.randrange(max(1, num_threads * operations_per_thread // 2))
        if inject_violation else -1
    )
    emitted = 0

    def apply_spec(operation: str, key: int):
        nonlocal state_register
        if data_structure == "set":
            if operation == "add":
                result = key not in state_set
                state_set.add(key)
            elif operation == "remove":
                result = key in state_set
                state_set.discard(key)
            else:
                result = key in state_set
            return result
        if data_structure == "queue":
            if operation == "enqueue":
                state_queue.append(key)
                return True
            return state_queue.pop(0) if state_queue else None
        if operation == "write":
            state_register = key
            return True
        return state_register

    while any(remaining.values()) or pending:
        candidates = [t for t in range(num_threads)
                      if remaining[t] > 0 or t in pending]
        thread = rng.choice(candidates)
        if thread in pending and (remaining[thread] == 0 or rng.random() > overlap):
            operation, result = pending.pop(thread)
            trace.end(thread, operation, result=result)
        elif thread not in pending and remaining[thread] > 0:
            key = rng.randrange(key_range)
            if data_structure == "set":
                operation = rng.choice(["add", "remove", "contains"])
            elif data_structure == "queue":
                operation = rng.choice(["enqueue", "dequeue"])
            else:
                operation = rng.choice(["write", "read"])
            result = apply_spec(operation, key)
            if emitted == violation_slot and isinstance(result, bool):
                result = not result
            emitted += 1
            remaining[thread] -= 1
            trace.begin(thread, operation, argument=key)
            pending[thread] = (operation, result)
    return trace


def random_cross_edges(num_chains: int, events_per_chain: int, count: int,
                       window: int = 10_000, seed: Optional[int] = 0
                       ) -> List[Tuple[Node, Node]]:
    """Candidate cross-chain edges for the Figure 11 scalability experiment.

    Produces ``count`` random edges ``(t, i) -> (t', j)`` with ``t != t'``
    and ``|i - j| <= window``, matching the paper's protocol ("cross-chain
    orderings are typically between events that execute within the same
    time-window").  The benchmark harness filters out candidates whose
    endpoints are already ordered before inserting.
    """
    _validate_positive(num_chains=num_chains, events_per_chain=events_per_chain,
                       count=count, window=window)
    if num_chains < 2:
        raise TraceError("random_cross_edges needs at least two chains")
    rng = _rng(seed)
    edges: List[Tuple[Node, Node]] = []
    for _ in range(count):
        source_chain = rng.randrange(num_chains)
        target_chain = rng.randrange(num_chains)
        while target_chain == source_chain:
            target_chain = rng.randrange(num_chains)
        source_index = rng.randrange(events_per_chain)
        low = max(0, source_index - window)
        high = min(events_per_chain - 1, source_index + window)
        target_index = rng.randint(low, high)
        edges.append(((source_chain, source_index), (target_chain, target_index)))
    return edges


def _validate_positive(**kwargs: int) -> None:
    for key, value in kwargs.items():
        if value <= 0:
            raise TraceError(f"{key} must be positive, got {value}")


# --------------------------------------------------------------------------- #
# Generator registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GeneratorEntry:
    """A registered trace generator plus the metadata needed to drive it
    uniformly: the name of the keyword argument that controls the per-thread
    trace size (``history_trace`` counts *operations*, everything else counts
    *events*), the names of the analyses the workload is meant to feed
    (used by the sweep runner to plan jobs; names only, so the trace layer
    stays independent of :mod:`repro.analyses`), a one-line description for
    the discovery tables, and the generator's ``source`` -- ``"classic"``
    for the hand-written generators in this module, ``"scenario"`` for the
    scenario-program families of :mod:`repro.gen.families`."""

    generator: Callable[..., Trace]
    size_parameter: str = "events_per_thread"
    analyses: Tuple[str, ...] = ()
    description: str = ""
    source: str = "classic"


#: Registry of trace generators addressable by a short kind name.  The CLI's
#: ``generate`` subcommand and the sweep runner's trace corpus both resolve
#: workload kinds through this table, so registering a generator here makes
#: it reachable from every front end at once.
GENERATOR_REGISTRY: Dict[str, GeneratorEntry] = {}


def register_generator(kind: str, generator: Callable[..., Trace],
                       size_parameter: str = "events_per_thread",
                       analyses: Sequence[str] = (),
                       description: str = "",
                       source: str = "classic") -> None:
    """Register ``generator`` under ``kind`` (overwrites a previous entry).

    ``analyses`` names the analyses this workload kind targets; the sweep
    runner refuses to plan jobs for kinds registered without any.
    ``description`` and ``source`` feed the unified discovery table
    (``repro gen --list``).
    """
    GENERATOR_REGISTRY[kind] = GeneratorEntry(generator, size_parameter,
                                              tuple(analyses),
                                              description, source)


def get_generator(kind: str) -> GeneratorEntry:
    """Look up a registered generator, raising :class:`TraceError` if unknown."""
    try:
        return GENERATOR_REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(GENERATOR_REGISTRY))
        raise TraceError(f"unknown trace kind {kind!r}; known: {known}") from None


def build_trace(kind: str, num_threads: int, events: int,
                seed: Optional[int] = 0, name: Optional[str] = None,
                **kwargs) -> Trace:
    """Build a trace of ``kind`` with a uniform parameter vocabulary.

    ``events`` is the per-thread size whatever the generator calls it
    (``events_per_thread`` or ``operations_per_thread``); extra keyword
    arguments are forwarded to the generator unchanged.
    """
    entry = get_generator(kind)
    build_kwargs: Dict[str, object] = {
        "num_threads": num_threads,
        entry.size_parameter: events,
        "seed": seed,
    }
    if name is not None:
        build_kwargs["name"] = name
    build_kwargs.update(kwargs)
    return entry.generator(**build_kwargs)


# The kind -> analyses pairing mirrors the paper's tables (the table in this
# module's docstring); ``memory`` feeds two analyses.
register_generator("racy", racy_trace, analyses=("race-prediction",),
                   description="protected/unprotected shared-memory mix")
register_generator("deadlock", deadlock_trace,
                   analyses=("deadlock-prediction",),
                   description="lock-heavy nesting with order inversions")
register_generator("memory", memory_trace,
                   analyses=("memory-bugs", "use-after-free"),
                   description="heap alloc/use/free with escaping objects")
register_generator("tso", tso_trace, analyses=("tso-consistency",),
                   description="valued writes/reads with store-buffer "
                               "staleness")
register_generator("c11", c11_trace, analyses=("c11-races",),
                   description="C11 atomics (rel/acq + relaxed) over plain "
                               "accesses")
register_generator("history", history_trace,
                   size_parameter="operations_per_thread",
                   analyses=("linearizability",),
                   description="concurrent-object method history "
                               "(set/queue/register)")

# Scenario-program families (repro.gen) register themselves into this same
# registry when their module loads; importing it here makes the registry
# complete for every front end that only imports the trace layer (the CLI,
# sweep workers, stream sources).  The import is circular-safe in both
# directions: everything this module defines is above this line, and the
# families module registers at the end of its own body.
from repro.gen import families as _scenario_families  # noqa: E402,F401
