"""Columnar (structure-of-arrays) view of a trace.

Analyses' inner loops historically touched :class:`~repro.trace.event.Event`
dataclasses for every event they merely wanted to *skip* -- attribute
access, enum identity checks, and property calls per event.
:class:`TraceColumns` lifts the hot metadata into dense, int-encoded
parallel arrays built once per trace and cached on it:

* ``kinds`` -- one small-int code per event (:data:`KIND_CODES`);
* ``threads`` / ``indexes`` -- the ``(t, i)`` identity columns;
* ``var_ids`` -- the accessed variable/location interned to a dense int id
  (``-1`` when the event has none); ``variables[id]`` recovers the object;
* one-byte flag columns (``access_flags``, ``read_flags``, ``write_flags``,
  ``atomic_flags``, ``acquire_mo_flags``, ``release_mo_flags``) mirroring
  the corresponding event predicates;
* ``thread_positions`` -- per thread, the global positions of its events in
  program order, so per-thread windows index the columns directly.

The view is *live* and append-only: it keeps a reference to the trace's
event list and :meth:`sync` encodes only the events appended since the last
call, so the streaming engine's growing trace pays O(new events) per flush
instead of a rebuild.  Access it through :meth:`repro.trace.trace.Trace.columns`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.trace.event import (
    ACCESS_KINDS,
    READ_KINDS,
    WRITE_KINDS,
    Event,
    EventKind,
)

#: Small-int code per event kind (dense; enum definition order, stable).
KIND_CODES: Dict[EventKind, int] = {
    kind: code for code, kind in enumerate(EventKind)
}

#: Inverse mapping: ``KIND_BY_CODE[code]`` is the :class:`EventKind`.
KIND_BY_CODE = tuple(EventKind)

ACQUIRE_CODE = KIND_CODES[EventKind.ACQUIRE]
RELEASE_CODE = KIND_CODES[EventKind.RELEASE]
ALLOC_CODE = KIND_CODES[EventKind.ALLOC]
FREE_CODE = KIND_CODES[EventKind.FREE]
FORK_CODE = KIND_CODES[EventKind.FORK]
JOIN_CODE = KIND_CODES[EventKind.JOIN]

_ACCESS_CODES = frozenset(KIND_CODES[kind] for kind in ACCESS_KINDS)
_READ_CODES = frozenset(KIND_CODES[kind] for kind in READ_KINDS)
_WRITE_CODES = frozenset(KIND_CODES[kind] for kind in WRITE_KINDS)


class TraceColumns:
    """Int-encoded columns over a live, append-only event list."""

    __slots__ = (
        "_events", "kinds", "threads", "indexes", "var_ids",
        "access_flags", "read_flags", "write_flags", "atomic_flags",
        "acquire_mo_flags", "release_mo_flags",
        "variables", "_intern", "thread_positions", "_built",
    )

    def __init__(self, events: List[Event]) -> None:
        self._events = events
        self.kinds = bytearray()
        self.threads: List[int] = []
        self.indexes: List[int] = []
        self.var_ids: List[int] = []
        self.access_flags = bytearray()
        self.read_flags = bytearray()
        self.write_flags = bytearray()
        self.atomic_flags = bytearray()
        self.acquire_mo_flags = bytearray()
        self.release_mo_flags = bytearray()
        self.variables: List[Any] = []
        self._intern: Dict[Any, int] = {}
        self.thread_positions: Dict[int, List[int]] = {}
        self._built = 0

    @classmethod
    def from_dense(cls, events: Sequence[Event], kinds, threads, indexes,
                   var_ids, access_flags, read_flags, write_flags,
                   atomic_flags, acquire_mo_flags, release_mo_flags,
                   variables: List[Any],
                   thread_positions: Dict[int, List[int]]) -> "TraceColumns":
        """Build a view over columns encoded elsewhere (the ``.stc``
        decoder) without re-scanning any events.

        ``events`` may be a lazy stand-in; it is only indexed for events
        appended *after* this point (``sync`` picks them up normally, so
        the view stays live and append-only like one built event by
        event).
        """
        columns = cls.__new__(cls)
        columns._events = events
        columns.kinds = kinds
        columns.threads = threads
        columns.indexes = indexes
        columns.var_ids = var_ids
        columns.access_flags = access_flags
        columns.read_flags = read_flags
        columns.write_flags = write_flags
        columns.atomic_flags = atomic_flags
        columns.acquire_mo_flags = acquire_mo_flags
        columns.release_mo_flags = release_mo_flags
        columns.variables = variables
        columns._intern = {variable: var_id
                           for var_id, variable in enumerate(variables)}
        columns.thread_positions = thread_positions
        columns._built = len(kinds)
        return columns

    def __len__(self) -> int:
        return self._built

    @property
    def events(self) -> Sequence[Event]:
        """The underlying event list (same objects the trace holds); use it
        to materialise an event found through the columns."""
        return self._events

    def variable_id(self, variable: Any) -> int:
        """The interned id of ``variable`` (``-1`` if never seen)."""
        return self._intern.get(variable, -1)

    def sync(self) -> "TraceColumns":
        """Encode the events appended since the last call; returns self."""
        events = self._events
        total = len(events)
        built = self._built
        if built == total:
            return self
        kinds = self.kinds
        threads = self.threads
        indexes = self.indexes
        var_ids = self.var_ids
        access_flags = self.access_flags
        read_flags = self.read_flags
        write_flags = self.write_flags
        atomic_flags = self.atomic_flags
        acquire_mo_flags = self.acquire_mo_flags
        release_mo_flags = self.release_mo_flags
        variables = self.variables
        intern = self._intern
        thread_positions = self.thread_positions
        kind_codes = KIND_CODES
        access_codes = _ACCESS_CODES
        read_codes = _READ_CODES
        write_codes = _WRITE_CODES
        for position in range(built, total):
            event = events[position]
            code = kind_codes[event.kind]
            kinds.append(code)
            thread = event.thread
            threads.append(thread)
            indexes.append(event.index)
            variable = event.variable
            if variable is None:
                var_ids.append(-1)
            else:
                var_id = intern.get(variable)
                if var_id is None:
                    var_id = len(variables)
                    intern[variable] = var_id
                    variables.append(variable)
                var_ids.append(var_id)
            access_flags.append(1 if code in access_codes else 0)
            read_flags.append(1 if code in read_codes else 0)
            write_flags.append(1 if code in write_codes else 0)
            atomic_flags.append(1 if event.atomic else 0)
            memory_order = event.memory_order
            if memory_order is None:
                acquire_mo_flags.append(0)
                release_mo_flags.append(0)
            else:
                acquire_mo_flags.append(1 if memory_order.is_acquire else 0)
                release_mo_flags.append(1 if memory_order.is_release else 0)
            positions = thread_positions.get(thread)
            if positions is None:
                positions = thread_positions[thread] = []
            positions.append(position)
        self._built = total
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceColumns(events={self._built}, "
            f"variables={len(self.variables)}, "
            f"threads={len(self.thread_positions)})"
        )
