"""Event model for concurrent execution traces.

The paper models a trace event as a tuple ``⟨t, i, m⟩`` (Section 2.1): a
thread identifier, a per-thread sequence id, and analysis-specific metadata.
CSSTs only ever look at ``(t, i)``; the metadata drives the individual
analyses.  The :class:`Event` class carries the superset of metadata used by
the seven analyses of the evaluation (shared-memory accesses, lock
operations, thread lifecycle, heap lifecycle, C11 atomics and method
invocations for linearizability histories).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class EventKind(enum.Enum):
    """The operation an event performs."""

    READ = "read"
    WRITE = "write"
    ACQUIRE = "acquire"
    RELEASE = "release"
    FORK = "fork"
    JOIN = "join"
    ALLOC = "alloc"
    FREE = "free"
    #: Atomic accesses used by the C11 and TSO analyses.
    ATOMIC_READ = "atomic_read"
    ATOMIC_WRITE = "atomic_write"
    ATOMIC_RMW = "atomic_rmw"
    FENCE = "fence"
    #: Method-invocation boundaries used by the linearizability analysis.
    BEGIN = "begin"
    END = "end"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MemoryOrder(enum.Enum):
    """C11 memory orders (only the ones relevant to happens-before)."""

    RELAXED = "relaxed"
    ACQUIRE = "acquire"
    RELEASE = "release"
    ACQ_REL = "acq_rel"
    SEQ_CST = "seq_cst"

    @property
    def is_acquire(self) -> bool:
        return self in (MemoryOrder.ACQUIRE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST)

    @property
    def is_release(self) -> bool:
        return self in (MemoryOrder.RELEASE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST)


#: Event kinds that access a shared memory location.
ACCESS_KINDS = frozenset(
    {
        EventKind.READ,
        EventKind.WRITE,
        EventKind.ATOMIC_READ,
        EventKind.ATOMIC_WRITE,
        EventKind.ATOMIC_RMW,
    }
)

#: Event kinds that write a shared memory location.
WRITE_KINDS = frozenset(
    {EventKind.WRITE, EventKind.ATOMIC_WRITE, EventKind.ATOMIC_RMW}
)

#: Event kinds that read a shared memory location.
READ_KINDS = frozenset(
    {EventKind.READ, EventKind.ATOMIC_READ, EventKind.ATOMIC_RMW}
)


@dataclass(frozen=True)
class Event:
    """A single event of a concurrent execution trace.

    Attributes
    ----------
    thread:
        Identifier of the issuing thread (the chain id of the event).
    index:
        Per-thread sequence id.  ``(thread, index)`` uniquely identifies the
        event and is the node handed to the partial-order backends.
    kind:
        The operation performed.
    variable:
        Shared variable / memory location for access events, lock name for
        ``ACQUIRE``/``RELEASE``, heap address for ``ALLOC``/``FREE``/access.
    value:
        Value written or read (used by consistency analyses).
    target:
        Target thread of ``FORK``/``JOIN`` events.
    memory_order:
        Memory order of C11 atomic events.
    operation:
        Method name for ``BEGIN``/``END`` events of linearizability
        histories (e.g. ``"add"``, ``"contains"``).
    argument / result:
        Argument and return value of a method invocation.
    atomic:
        ``True`` for C11 atomic accesses (kept alongside ``kind`` so the C11
        analysis can distinguish atomics from plain accesses uniformly).
    """

    thread: int
    index: int
    kind: EventKind
    variable: Optional[Any] = None
    value: Optional[Any] = None
    target: Optional[int] = None
    memory_order: Optional[MemoryOrder] = None
    operation: Optional[str] = None
    argument: Optional[Any] = None
    result: Optional[Any] = None
    atomic: bool = field(default=False)

    # ------------------------------------------------------------------ #
    # Identification helpers
    # ------------------------------------------------------------------ #
    @property
    def node(self) -> Tuple[int, int]:
        """The ``(chain, index)`` node handed to partial-order backends."""
        return (self.thread, self.index)

    @property
    def is_access(self) -> bool:
        """Whether this event accesses a shared memory location."""
        return self.kind in ACCESS_KINDS

    @property
    def is_write(self) -> bool:
        """Whether this event writes a shared memory location."""
        return self.kind in WRITE_KINDS

    @property
    def is_read(self) -> bool:
        """Whether this event reads a shared memory location."""
        return self.kind in READ_KINDS

    def conflicts_with(self, other: "Event") -> bool:
        """Two access events conflict when they touch the same variable from
        different threads and at least one of them writes."""
        return (
            self.is_access
            and other.is_access
            and self.variable == other.variable
            and self.thread != other.thread
            and (self.is_write or other.is_write)
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        details = []
        if self.variable is not None:
            details.append(f"var={self.variable}")
        if self.value is not None:
            details.append(f"val={self.value}")
        if self.target is not None:
            details.append(f"target={self.target}")
        if self.operation is not None:
            details.append(f"op={self.operation}")
        detail = ", ".join(details)
        return f"<{self.thread}.{self.index} {self.kind.value} {detail}>"
