"""Binary columnar trace format (``.stc`` -- "serialized trace columns").

An ``.stc`` file is :class:`~repro.trace.columns.TraceColumns` on disk: a
fixed prelude, a section table, then one section per column, each a typed
:mod:`array` blob that loads with a single ``array.frombytes`` over a
``memoryview`` slice.  Decoding builds the columnar view and the per-thread
position lists directly from the mapped sections and materialises **zero**
:class:`~repro.trace.event.Event` objects; the returned :class:`LazyTrace`
inflates events on demand, one at a time, only when a consumer actually
asks for them.

Layout (version 1, everything little-endian)::

    prelude     magic b"\\x89STC" | version u16 | flags u16
                | event_count u64 | section_count u32
    table       section_count x (section_id u32 | offset u64 | length u64)
    sections    raw bytes, referenced by the table

Sections (ids in :data:`SECTION_NAMES`)::

    NAME          trace name, UTF-8
    POOL          value-interning pool: entry_count u32, then tagged
                  entries (INT: zigzag varint; FALSE/TRUE: empty;
                  STR: varint byte length + UTF-8; MO: u8 memory-order code)
    VARIABLES     variable table: count u32 + pool ids u32[], in
                  first-appearance order (``TraceColumns.variables``)
    KINDS         u8[n]   kind codes (:data:`~repro.trace.columns.KIND_CODES`)
    THREADS       i64[n]  thread ids
    INDEXES       i64[n]  per-thread sequence ids
    VAR_IDS       i32[n]  interned variable id, -1 when absent
    VALUE_IDS     i32[n]  pool id of ``event.value``, -1 when absent
    TARGET_IDS    i32[n]  pool id of ``event.target``, -1 when absent
    MO_CODES      u8[n]   memory-order code (0 = none, then enum order)
    OP_IDS        i32[n]  pool id of ``event.operation``, -1 when absent
    ARG_IDS       i32[n]  pool id of ``event.argument``, -1 when absent
    RESULT_IDS    i32[n]  pool id of ``event.result``, -1 when absent
    ATOMIC        u8[n]   ``event.atomic`` flags
    ACCESS/READ/WRITE/ACQUIRE_MO/RELEASE_MO
                  u8[n]   predicate flag columns (redundant with KINDS and
                  MO_CODES; stored so the columnar view needs no re-derive
                  pass and *verified* against them on load)
    THREAD_TABLE  count u32 + count x (thread_id i64 | event_count u64),
                  sorted by thread id
    POSITIONS     i64[n]  per-thread global positions, concatenated in
                  THREAD_TABLE order (``TraceColumns.thread_positions``)

Encoding is deterministic: the same trace always serialises to identical
bytes (pool and variable ids are assigned in first-reference order, the
thread table is sorted), and ``.stc.gz`` uses the same canonical gzip
parameters as the text format (zeroed mtime, no embedded filename).

Every integrity violation raises :class:`~repro.errors.TraceFormatError`;
see :func:`decode_trace`.
"""

from __future__ import annotations

import gzip
import mmap
import struct
import sys
from array import array
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import TraceError, TraceFormatError
from repro.trace.columns import (
    _ACCESS_CODES,
    _READ_CODES,
    _WRITE_CODES,
    KIND_BY_CODE,
    KIND_CODES,
    TraceColumns,
)
from repro.trace.event import Event, EventKind, MemoryOrder
from repro.trace.trace import Trace

#: First bytes of every ``.stc`` file (high bit set, like PNG, so text
#: tools cannot mistake it for STD).
STC_MAGIC = b"\x89STC"

#: The one format version this build reads and writes.
STC_VERSION = 1

# The on-disk integer widths are fixed; ``array`` typecodes are only
# C-width *aliases*, so pin them down once at import time.
_U8, _I32, _U32, _I64 = "B", "i", "I", "q"
if (array(_I32).itemsize, array(_U32).itemsize, array(_I64).itemsize) != (4, 4, 8):
    raise ImportError(
        "repro.trace.binfmt requires 4-byte 'i'/'I' and 8-byte 'q' arrays"
    )  # pragma: no cover - never on CPython's supported platforms

_BIG_ENDIAN = sys.byteorder == "big"

_PRELUDE = struct.Struct("<4sHHQI")
_TABLE_ENTRY = struct.Struct("<IQQ")
_THREAD_ENTRY = struct.Struct("<qQ")
_U32_STRUCT = struct.Struct("<I")

# Section ids.
SEC_NAME = 1
SEC_POOL = 2
SEC_VARIABLES = 3
SEC_KINDS = 4
SEC_THREADS = 5
SEC_INDEXES = 6
SEC_VAR_IDS = 7
SEC_VALUE_IDS = 8
SEC_TARGET_IDS = 9
SEC_MO_CODES = 10
SEC_OP_IDS = 11
SEC_ARG_IDS = 12
SEC_RESULT_IDS = 13
SEC_ATOMIC = 14
SEC_ACCESS = 15
SEC_READ = 16
SEC_WRITE = 17
SEC_ACQUIRE_MO = 18
SEC_RELEASE_MO = 19
SEC_THREAD_TABLE = 20
SEC_POSITIONS = 21

#: Human-readable section names, used in error messages and docs.
SECTION_NAMES = {
    SEC_NAME: "NAME",
    SEC_POOL: "POOL",
    SEC_VARIABLES: "VARIABLES",
    SEC_KINDS: "KINDS",
    SEC_THREADS: "THREADS",
    SEC_INDEXES: "INDEXES",
    SEC_VAR_IDS: "VAR_IDS",
    SEC_VALUE_IDS: "VALUE_IDS",
    SEC_TARGET_IDS: "TARGET_IDS",
    SEC_MO_CODES: "MO_CODES",
    SEC_OP_IDS: "OP_IDS",
    SEC_ARG_IDS: "ARG_IDS",
    SEC_RESULT_IDS: "RESULT_IDS",
    SEC_ATOMIC: "ATOMIC",
    SEC_ACCESS: "ACCESS",
    SEC_READ: "READ",
    SEC_WRITE: "WRITE",
    SEC_ACQUIRE_MO: "ACQUIRE_MO",
    SEC_RELEASE_MO: "RELEASE_MO",
    SEC_THREAD_TABLE: "THREAD_TABLE",
    SEC_POSITIONS: "POSITIONS",
}

# Value-pool entry tags.
_TAG_INT = 1
_TAG_FALSE = 2
_TAG_TRUE = 3
_TAG_STR = 4
_TAG_MO = 5

#: Memory-order wire codes: 0 is "no memory order", then enum order.
_MO_CODE = {order: code for code, order in enumerate(MemoryOrder, start=1)}
_MO_BY_CODE = (None,) + tuple(MemoryOrder)

# 256-entry translate tables deriving each flag column from the kind (or
# memory-order) code column in one C-level pass; used both to encode and
# to cross-check the stored flag sections on load.
_ACCESS_TABLE = bytes(1 if code in _ACCESS_CODES else 0 for code in range(256))
_READ_TABLE = bytes(1 if code in _READ_CODES else 0 for code in range(256))
_WRITE_TABLE = bytes(1 if code in _WRITE_CODES else 0 for code in range(256))
_ACQ_MO_TABLE = bytes(
    1 if (0 < code < len(_MO_BY_CODE) and _MO_BY_CODE[code].is_acquire) else 0
    for code in range(256)
)
_REL_MO_TABLE = bytes(
    1 if (0 < code < len(_MO_BY_CODE) and _MO_BY_CODE[code].is_release) else 0
    for code in range(256)
)


# --------------------------------------------------------------------------- #
# Varints
# --------------------------------------------------------------------------- #
def _append_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data, offset: int, end: int, label: str) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= end:
            raise TraceFormatError(f"truncated varint in {label}")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 1024:  # a legitimate int never needs 147 continuation bytes
            raise TraceFormatError(f"runaway varint in {label}")


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# --------------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------------- #
def _intern_key(value) -> tuple:
    # The tag participates in the key so ``True`` and ``1`` (equal, same
    # hash) intern to *distinct* pool entries and round-trip with their
    # types intact -- the same reason the STD format prefixes values.
    if isinstance(value, bool):
        return (_TAG_TRUE if value else _TAG_FALSE,)
    if isinstance(value, int):
        return (_TAG_INT, value)
    if isinstance(value, MemoryOrder):
        return (_TAG_MO, _MO_CODE[value])
    # Everything else serialises as its string form, matching STD's
    # ``str:`` fallback semantics.
    return (_TAG_STR, value if isinstance(value, str) else str(value))


def _arr_bytes(arr: array) -> bytes:
    if _BIG_ENDIAN:  # pragma: no cover - little-endian hosts in CI
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def encode_trace(trace: Trace) -> bytes:
    """Serialise ``trace`` to ``.stc`` bytes (deterministic: equal traces
    encode to identical bytes).

    Raises
    ------
    TraceFormatError
        If an event carries data the format cannot hold (a thread id
        outside i64, or more than 2**31 interned values/variables).
    """
    pool_ids: Dict[tuple, int] = {}
    pool_blob = bytearray()

    def intern(value) -> int:
        key = _intern_key(value)
        pool_id = pool_ids.get(key)
        if pool_id is None:
            pool_id = pool_ids[key] = len(pool_ids)
            tag = key[0]
            pool_blob.append(tag)
            if tag == _TAG_INT:
                _append_uvarint(pool_blob, _zigzag(key[1]))
            elif tag == _TAG_STR:
                encoded = key[1].encode("utf-8")
                _append_uvarint(pool_blob, len(encoded))
                pool_blob.extend(encoded)
            elif tag == _TAG_MO:
                pool_blob.append(key[1])
        return pool_id

    kinds = bytearray()
    threads = array(_I64)
    indexes = array(_I64)
    var_ids = array(_I32)
    value_ids = array(_I32)
    target_ids = array(_I32)
    mo_codes = bytearray()
    op_ids = array(_I32)
    arg_ids = array(_I32)
    result_ids = array(_I32)
    atomic_flags = bytearray()
    variable_pool_ids: List[int] = []
    var_by_pool: Dict[int, int] = {}
    thread_positions: Dict[int, List[int]] = {}

    try:
        for position, event in enumerate(trace):
            kinds.append(KIND_CODES[event.kind])
            thread = event.thread
            threads.append(thread)
            indexes.append(event.index)
            variable = event.variable
            if variable is None:
                var_ids.append(-1)
            else:
                pool_id = intern(variable)
                var_id = var_by_pool.get(pool_id)
                if var_id is None:
                    var_id = var_by_pool[pool_id] = len(variable_pool_ids)
                    variable_pool_ids.append(pool_id)
                var_ids.append(var_id)
            value_ids.append(-1 if event.value is None else intern(event.value))
            target_ids.append(
                -1 if event.target is None else intern(event.target))
            memory_order = event.memory_order
            if memory_order is None:
                mo_codes.append(0)
            else:
                code = _MO_CODE.get(memory_order)
                if code is None:
                    raise TraceFormatError(
                        f"cannot encode memory order {memory_order!r}")
                mo_codes.append(code)
            op_ids.append(
                -1 if event.operation is None else intern(event.operation))
            arg_ids.append(
                -1 if event.argument is None else intern(event.argument))
            result_ids.append(
                -1 if event.result is None else intern(event.result))
            atomic_flags.append(1 if event.atomic else 0)
            positions = thread_positions.get(thread)
            if positions is None:
                positions = thread_positions[thread] = []
            positions.append(position)
    except (OverflowError, TypeError) as error:
        raise TraceFormatError(
            f"trace has an identifier outside the .stc integer range: {error}"
        ) from None

    count = len(kinds)
    kind_bytes = bytes(kinds)
    mo_bytes = bytes(mo_codes)
    thread_table = bytearray(_U32_STRUCT.pack(len(thread_positions)))
    positions_flat = array(_I64)
    for thread in sorted(thread_positions):
        positions = thread_positions[thread]
        thread_table += _THREAD_ENTRY.pack(thread, len(positions))
        positions_flat.extend(positions)

    sections = (
        (SEC_NAME, str(trace.name).encode("utf-8")),
        (SEC_POOL, _U32_STRUCT.pack(len(pool_ids)) + bytes(pool_blob)),
        (SEC_VARIABLES,
         _U32_STRUCT.pack(len(variable_pool_ids))
         + _arr_bytes(array(_U32, variable_pool_ids))),
        (SEC_KINDS, kind_bytes),
        (SEC_THREADS, _arr_bytes(threads)),
        (SEC_INDEXES, _arr_bytes(indexes)),
        (SEC_VAR_IDS, _arr_bytes(var_ids)),
        (SEC_VALUE_IDS, _arr_bytes(value_ids)),
        (SEC_TARGET_IDS, _arr_bytes(target_ids)),
        (SEC_MO_CODES, mo_bytes),
        (SEC_OP_IDS, _arr_bytes(op_ids)),
        (SEC_ARG_IDS, _arr_bytes(arg_ids)),
        (SEC_RESULT_IDS, _arr_bytes(result_ids)),
        (SEC_ATOMIC, bytes(atomic_flags)),
        (SEC_ACCESS, kind_bytes.translate(_ACCESS_TABLE)),
        (SEC_READ, kind_bytes.translate(_READ_TABLE)),
        (SEC_WRITE, kind_bytes.translate(_WRITE_TABLE)),
        (SEC_ACQUIRE_MO, mo_bytes.translate(_ACQ_MO_TABLE)),
        (SEC_RELEASE_MO, mo_bytes.translate(_REL_MO_TABLE)),
        (SEC_THREAD_TABLE, bytes(thread_table)),
        (SEC_POSITIONS, _arr_bytes(positions_flat)),
    )
    offset = _PRELUDE.size + _TABLE_ENTRY.size * len(sections)
    table = bytearray()
    payload = bytearray()
    for section_id, blob in sections:
        table += _TABLE_ENTRY.pack(section_id, offset, len(blob))
        payload += blob
        offset += len(blob)
    return (_PRELUDE.pack(STC_MAGIC, STC_VERSION, 0, count, len(sections))
            + bytes(table) + bytes(payload))


# --------------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------------- #
class _Columns:
    """Decoded column sections of one ``.stc`` payload (no events)."""

    __slots__ = (
        "event_count", "name", "pool", "variables", "kinds", "threads",
        "indexes", "var_ids", "value_ids", "target_ids", "mo_codes",
        "op_ids", "arg_ids", "result_ids", "atomic_flags", "access_flags",
        "read_flags", "write_flags", "acquire_mo_flags", "release_mo_flags",
        "thread_ids", "thread_positions",
    )


def _decode_pool(data, offset: int, length: int) -> List[Any]:
    end = offset + length
    if length < 4:
        raise TraceFormatError("POOL section too short for its entry count")
    (count,) = _U32_STRUCT.unpack_from(data, offset)
    offset += 4
    pool: List[Any] = []
    for _ in range(count):
        if offset >= end:
            raise TraceFormatError(
                f"POOL section truncated: {count} entries promised, "
                f"{len(pool)} decoded")
        tag = data[offset]
        offset += 1
        if tag == _TAG_INT:
            raw, offset = _read_uvarint(data, offset, end, "POOL int entry")
            pool.append(_unzigzag(raw))
        elif tag == _TAG_FALSE:
            pool.append(False)
        elif tag == _TAG_TRUE:
            pool.append(True)
        elif tag == _TAG_STR:
            size, offset = _read_uvarint(data, offset, end, "POOL string entry")
            if offset + size > end:
                raise TraceFormatError(
                    f"POOL string entry overruns the section by "
                    f"{offset + size - end} bytes")
            try:
                pool.append(bytes(data[offset:offset + size]).decode("utf-8"))
            except UnicodeDecodeError as error:
                raise TraceFormatError(
                    f"POOL string entry is not valid UTF-8: {error}") from None
            offset += size
        elif tag == _TAG_MO:
            if offset >= end:
                raise TraceFormatError("POOL memory-order entry truncated")
            code = data[offset]
            offset += 1
            if not 1 <= code < len(_MO_BY_CODE):
                raise TraceFormatError(
                    f"POOL memory-order code {code} out of range")
            pool.append(_MO_BY_CODE[code])
        else:
            raise TraceFormatError(f"unknown POOL entry tag {tag}")
    if offset != end:
        raise TraceFormatError(
            f"POOL section has {end - offset} trailing bytes after its "
            f"{count} entries")
    return pool


def _check_id_column(arr: array, label: str, limit: int,
                     limit_label: str) -> None:
    if len(arr) and (min(arr) < -1 or max(arr) >= limit):
        raise TraceFormatError(
            f"{label} section has an id outside [-1, {limit}) "
            f"({limit_label})")


def decode_trace(data, name: Optional[str] = None) -> "LazyTrace":
    """Decode ``.stc`` bytes into a :class:`LazyTrace`.

    ``data`` is any bytes-like object (``bytes``, ``memoryview``, an
    ``mmap``).  The columns are validated eagerly -- section bounds,
    id ranges, flag-column consistency with the kind and memory-order
    codes, thread-table totals -- but **no** :class:`Event` objects are
    built; they inflate lazily on access.  ``name`` overrides the stored
    trace name when given.

    Raises
    ------
    TraceFormatError
        On any malformed input: wrong magic, unsupported version,
        truncated or overlapping sections, bad lengths, out-of-range ids,
        inconsistent flag columns.
    """
    view = memoryview(data)
    total = len(view)
    if total < _PRELUDE.size:
        raise TraceFormatError(
            f"not an .stc trace: {total} bytes is shorter than the "
            f"{_PRELUDE.size}-byte prelude")
    magic, version, _flags, count, section_count = _PRELUDE.unpack_from(view, 0)
    if magic != STC_MAGIC:
        raise TraceFormatError(
            f"not an .stc trace: bad magic {bytes(magic)!r} "
            f"(expected {STC_MAGIC!r})")
    if version != STC_VERSION:
        raise TraceFormatError(
            f"unsupported .stc version {version}; this build reads "
            f"version {STC_VERSION}")
    table_end = _PRELUDE.size + _TABLE_ENTRY.size * section_count
    if total < table_end:
        raise TraceFormatError(
            f"section table truncated: {section_count} entries need "
            f"{table_end} bytes, file has {total}")
    sections: Dict[int, Tuple[int, int]] = {}
    for entry in range(section_count):
        section_id, offset, length = _TABLE_ENTRY.unpack_from(
            view, _PRELUDE.size + _TABLE_ENTRY.size * entry)
        section_name = SECTION_NAMES.get(section_id, str(section_id))
        if section_id in sections:
            raise TraceFormatError(f"duplicate section {section_name}")
        if offset < table_end or offset + length > total:
            raise TraceFormatError(
                f"section {section_name} [{offset}, {offset + length}) "
                f"lies outside the file payload [{table_end}, {total})")
        sections[section_id] = (offset, length)

    def section(section_id: int) -> Tuple[int, int]:
        entry = sections.get(section_id)
        if entry is None:
            raise TraceFormatError(
                f"missing required section {SECTION_NAMES[section_id]}")
        return entry

    def byte_column(section_id: int) -> bytes:
        offset, length = section(section_id)
        if length != count:
            raise TraceFormatError(
                f"section {SECTION_NAMES[section_id]} holds {length} bytes "
                f"for {count} events")
        return bytes(view[offset:offset + length])

    def array_column(section_id: int, typecode: str,
                     expected: int) -> array:
        offset, length = section(section_id)
        itemsize = 4 if typecode in (_I32, _U32) else 8
        if length != expected * itemsize:
            raise TraceFormatError(
                f"section {SECTION_NAMES[section_id]} holds {length} bytes; "
                f"expected {expected} x {itemsize}")
        arr = array(typecode)
        arr.frombytes(view[offset:offset + length])
        if _BIG_ENDIAN:  # pragma: no cover - little-endian hosts in CI
            arr.byteswap()
        return arr

    name_offset, name_length = section(SEC_NAME)
    try:
        stored_name = bytes(
            view[name_offset:name_offset + name_length]).decode("utf-8")
    except UnicodeDecodeError as error:
        raise TraceFormatError(
            f"NAME section is not valid UTF-8: {error}") from None

    pool_offset, pool_length = section(SEC_POOL)
    pool = _decode_pool(view, pool_offset, pool_length)

    vars_offset, vars_length = section(SEC_VARIABLES)
    if vars_length < 4:
        raise TraceFormatError(
            "VARIABLES section too short for its entry count")
    (var_count,) = _U32_STRUCT.unpack_from(view, vars_offset)
    if vars_length != 4 + 4 * var_count:
        raise TraceFormatError(
            f"VARIABLES section holds {vars_length} bytes for "
            f"{var_count} entries")
    var_pool_ids = array(_U32)
    var_pool_ids.frombytes(view[vars_offset + 4:vars_offset + vars_length])
    if _BIG_ENDIAN:  # pragma: no cover - little-endian hosts in CI
        var_pool_ids.byteswap()
    if len(var_pool_ids) and max(var_pool_ids) >= len(pool):
        raise TraceFormatError(
            f"VARIABLES section references pool id "
            f"{max(var_pool_ids)} outside the {len(pool)}-entry pool")
    variables = [pool[pool_id] for pool_id in var_pool_ids]

    columns = _Columns()
    columns.event_count = count
    columns.name = stored_name if name is None else name
    columns.pool = pool
    columns.variables = variables
    columns.kinds = byte_column(SEC_KINDS)
    columns.threads = array_column(SEC_THREADS, _I64, count)
    columns.indexes = array_column(SEC_INDEXES, _I64, count)
    columns.var_ids = array_column(SEC_VAR_IDS, _I32, count)
    columns.value_ids = array_column(SEC_VALUE_IDS, _I32, count)
    columns.target_ids = array_column(SEC_TARGET_IDS, _I32, count)
    columns.mo_codes = byte_column(SEC_MO_CODES)
    columns.op_ids = array_column(SEC_OP_IDS, _I32, count)
    columns.arg_ids = array_column(SEC_ARG_IDS, _I32, count)
    columns.result_ids = array_column(SEC_RESULT_IDS, _I32, count)
    columns.atomic_flags = byte_column(SEC_ATOMIC)
    columns.access_flags = byte_column(SEC_ACCESS)
    columns.read_flags = byte_column(SEC_READ)
    columns.write_flags = byte_column(SEC_WRITE)
    columns.acquire_mo_flags = byte_column(SEC_ACQUIRE_MO)
    columns.release_mo_flags = byte_column(SEC_RELEASE_MO)

    if count:
        if max(columns.kinds) >= len(KIND_BY_CODE):
            raise TraceFormatError(
                f"KINDS section has code {max(columns.kinds)}; only "
                f"{len(KIND_BY_CODE)} event kinds exist")
        if max(columns.mo_codes) >= len(_MO_BY_CODE):
            raise TraceFormatError(
                f"MO_CODES section has code {max(columns.mo_codes)}; only "
                f"{len(_MO_BY_CODE) - 1} memory orders exist")
    _check_id_column(columns.var_ids, "VAR_IDS", len(variables),
                     "the variable table size")
    for section_id, arr in ((SEC_VALUE_IDS, columns.value_ids),
                            (SEC_TARGET_IDS, columns.target_ids),
                            (SEC_OP_IDS, columns.op_ids),
                            (SEC_ARG_IDS, columns.arg_ids),
                            (SEC_RESULT_IDS, columns.result_ids)):
        _check_id_column(arr, SECTION_NAMES[section_id], len(pool),
                         "the value pool size")
    for section_id, stored, derived in (
            (SEC_ACCESS, columns.access_flags,
             columns.kinds.translate(_ACCESS_TABLE)),
            (SEC_READ, columns.read_flags,
             columns.kinds.translate(_READ_TABLE)),
            (SEC_WRITE, columns.write_flags,
             columns.kinds.translate(_WRITE_TABLE)),
            (SEC_ACQUIRE_MO, columns.acquire_mo_flags,
             columns.mo_codes.translate(_ACQ_MO_TABLE)),
            (SEC_RELEASE_MO, columns.release_mo_flags,
             columns.mo_codes.translate(_REL_MO_TABLE))):
        if stored != derived:
            raise TraceFormatError(
                f"section {SECTION_NAMES[section_id]} disagrees with the "
                f"flags derived from the kind/memory-order codes")

    table_offset, table_length = section(SEC_THREAD_TABLE)
    if table_length < 4:
        raise TraceFormatError(
            "THREAD_TABLE section too short for its entry count")
    (thread_count,) = _U32_STRUCT.unpack_from(view, table_offset)
    if table_length != 4 + _THREAD_ENTRY.size * thread_count:
        raise TraceFormatError(
            f"THREAD_TABLE section holds {table_length} bytes for "
            f"{thread_count} entries")
    positions_flat = array_column(SEC_POSITIONS, _I64, count)
    if count and (min(positions_flat) < 0 or max(positions_flat) >= count):
        raise TraceFormatError(
            f"POSITIONS section has a position outside [0, {count})")
    thread_ids: List[int] = []
    thread_positions: Dict[int, array] = {}
    cursor = 0
    previous = None
    for entry in range(thread_count):
        thread, events = _THREAD_ENTRY.unpack_from(
            view, table_offset + 4 + _THREAD_ENTRY.size * entry)
        if previous is not None and thread <= previous:
            raise TraceFormatError(
                "THREAD_TABLE entries are not sorted by thread id")
        previous = thread
        if events == 0 or cursor + events > count:
            raise TraceFormatError(
                f"THREAD_TABLE entry for thread {thread} claims {events} "
                f"events; {count - cursor} positions remain")
        positions = positions_flat[cursor:cursor + events]
        # Spot-check the interlock between the position lists and the
        # THREADS column (full verification happens lazily, event by
        # event, when something inflates them).
        if (columns.threads[positions[0]] != thread
                or columns.threads[positions[-1]] != thread):
            raise TraceFormatError(
                f"THREAD_TABLE entry for thread {thread} points at "
                f"positions belonging to another thread")
        thread_ids.append(thread)
        thread_positions[thread] = positions
        cursor += events
    if cursor != count:
        raise TraceFormatError(
            f"THREAD_TABLE entries cover {cursor} of {count} events")
    columns.thread_ids = thread_ids
    columns.thread_positions = thread_positions
    return LazyTrace(columns)


# --------------------------------------------------------------------------- #
# LazyTrace
# --------------------------------------------------------------------------- #
class _LazyEventSequence(Sequence):
    """Event-list stand-in handed to :class:`TraceColumns`: indexing
    routes through the owning :class:`LazyTrace` (inflating on demand),
    and the length tracks the trace so post-load appends keep
    ``TraceColumns.sync`` working."""

    __slots__ = ("_trace",)

    def __init__(self, trace: "LazyTrace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace)

    def __getitem__(self, position):
        return self._trace[position]


class LazyTrace(Trace):
    """A :class:`Trace` decoded from ``.stc`` columns that inflates
    :class:`Event` objects only on demand.

    Structural queries -- length, thread ids and lengths, per-thread
    positions, the :meth:`columns` view -- are answered straight from the
    decoded sections with no events built.  Accessing an event (indexing,
    iteration, :meth:`event_at`) inflates exactly that event and caches
    it.  Operations that need the full object-level index (the derived
    maps, or appending new events) hydrate the whole trace first, after
    which the instance behaves exactly like an eagerly built
    :class:`Trace`.
    """

    def __init__(self, columns: _Columns) -> None:
        super().__init__(name=columns.name)
        self._lazy = columns
        self._cache: Dict[int, Event] = {}
        self._hydrated = False
        # Bound once at decode time; None keeps the per-event inflation
        # path free of any telemetry cost when disabled.
        from repro.obs import metrics as obs_metrics

        active = obs_metrics.ACTIVE
        self._m_hydrations = (active.counter("stc_hydrations_total")
                              if active is not None else None)

    # -------------------------------------------------------------- #
    # Inflation machinery
    # -------------------------------------------------------------- #
    @property
    def materialized_count(self) -> int:
        """How many :class:`Event` objects this trace has built so far
        (the zero-until-accessed contract is asserted against this)."""
        return len(self._events) if self._hydrated else len(self._cache)

    def _inflate(self, position: int) -> Event:
        event = self._cache.get(position)
        if event is not None:
            return event
        if self._m_hydrations is not None:
            self._m_hydrations.inc()
        lazy = self._lazy
        pool = lazy.pool
        value_id = lazy.value_ids[position]
        target_id = lazy.target_ids[position]
        op_id = lazy.op_ids[position]
        arg_id = lazy.arg_ids[position]
        result_id = lazy.result_ids[position]
        var_id = lazy.var_ids[position]
        target = None if target_id < 0 else pool[target_id]
        if target is not None and (not isinstance(target, int)
                                   or isinstance(target, bool)):
            raise TraceFormatError(
                f"event {position} has a non-integer fork/join target "
                f"{target!r}")
        operation = None if op_id < 0 else pool[op_id]
        if operation is not None and not isinstance(operation, str):
            raise TraceFormatError(
                f"event {position} has a non-string operation {operation!r}")
        # ``Event`` is looked up on the module (not closed over) so tests
        # can substitute a counting stand-in and prove nothing inflates.
        event = Event(
            thread=lazy.threads[position],
            index=lazy.indexes[position],
            kind=KIND_BY_CODE[lazy.kinds[position]],
            variable=None if var_id < 0 else lazy.variables[var_id],
            value=None if value_id < 0 else pool[value_id],
            target=target,
            memory_order=_MO_BY_CODE[lazy.mo_codes[position]],
            operation=operation,
            argument=None if arg_id < 0 else pool[arg_id],
            result=None if result_id < 0 else pool[result_id],
            atomic=bool(lazy.atomic_flags[position]),
        )
        self._cache[position] = event
        return event

    def _hydrate(self) -> None:
        """Inflate every event into the full object-level ``Trace``
        indexes; afterwards the superclass handles everything."""
        if self._hydrated:
            return
        append = Trace._append_existing
        for position in range(self._lazy.event_count):
            append(self, self._inflate(position))
        self._hydrated = True
        self._cache = {}

    # -------------------------------------------------------------- #
    # Lazy views (no events built)
    # -------------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._events) if self._hydrated else self._lazy.event_count

    def __getitem__(self, position):
        if self._hydrated:
            return self._events[position]
        if isinstance(position, slice):
            return [self._inflate(i)
                    for i in range(*position.indices(self._lazy.event_count))]
        if position < 0:
            position += self._lazy.event_count
        if not 0 <= position < self._lazy.event_count:
            raise IndexError("trace index out of range")
        return self._inflate(position)

    def __iter__(self):
        return self.iter_from(0)

    def iter_from(self, position: int = 0):
        while position < len(self):
            yield self[position]
            position += 1

    @property
    def events(self) -> Sequence[Event]:
        if self._hydrated:
            return tuple(self._events)
        return tuple(self._inflate(i)
                     for i in range(self._lazy.event_count))

    @property
    def threads(self) -> List[int]:
        if self._hydrated:
            return sorted(self._per_thread)
        return list(self._lazy.thread_ids)

    @property
    def num_threads(self) -> int:
        if self._hydrated:
            return len(self._per_thread)
        return len(self._lazy.thread_ids)

    def thread_events(self, thread: int) -> Sequence[Event]:
        if self._hydrated:
            return super().thread_events(thread)
        positions = self._lazy.thread_positions.get(thread)
        if positions is None:
            return ()
        return tuple(self._inflate(position) for position in positions)

    def thread_length(self, thread: int) -> int:
        if self._hydrated:
            return super().thread_length(thread)
        positions = self._lazy.thread_positions.get(thread)
        return 0 if positions is None else len(positions)

    @property
    def max_thread_length(self) -> int:
        if self._hydrated:
            return super().max_thread_length
        return max((len(positions)
                    for positions in self._lazy.thread_positions.values()),
                   default=0)

    def event_at(self, node) -> Event:
        if self._hydrated:
            return super().event_at(node)
        thread, index = node
        positions = self._lazy.thread_positions.get(thread)
        if positions is None or not 0 <= index < len(positions):
            raise TraceError(f"no event at node {node}")
        return self._inflate(positions[index])

    def columns(self) -> TraceColumns:
        columns = self._columns
        if columns is None:
            lazy = self._lazy
            columns = self._columns = TraceColumns.from_dense(
                events=_LazyEventSequence(self),
                kinds=bytearray(lazy.kinds),
                threads=lazy.threads,
                indexes=lazy.indexes,
                var_ids=lazy.var_ids,
                access_flags=bytearray(lazy.access_flags),
                read_flags=bytearray(lazy.read_flags),
                write_flags=bytearray(lazy.write_flags),
                atomic_flags=bytearray(lazy.atomic_flags),
                acquire_mo_flags=bytearray(lazy.acquire_mo_flags),
                release_mo_flags=bytearray(lazy.release_mo_flags),
                variables=list(lazy.variables),
                thread_positions=dict(lazy.thread_positions),
            )
        return columns.sync()

    # -------------------------------------------------------------- #
    # Hydrating operations (need the object-level indexes)
    # -------------------------------------------------------------- #
    def add(self, event: Event) -> Event:
        self._hydrate()
        return super().add(event)

    def append(self, thread: int, kind: EventKind, **metadata) -> Event:
        self._hydrate()
        return super().append(thread, kind, **metadata)

    def accesses_by_variable(self) -> Dict:
        self._hydrate()
        return super().accesses_by_variable()

    def writes_by_variable(self) -> Dict:
        self._hydrate()
        return super().writes_by_variable()

    def critical_sections(self):
        self._hydrate()
        return super().critical_sections()

    def locks_held_at(self, event: Event) -> frozenset:
        self._hydrate()
        return super().locks_held_at(event)

    def locks_held_map(self) -> Dict:
        self._hydrate()
        return super().locks_held_map()

    def reads_from(self) -> Dict[Event, Optional[Event]]:
        self._hydrate()
        return super().reads_from()

    def fork_join_edges(self):
        self._hydrate()
        return super().fork_join_edges()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "hydrated" if self._hydrated else "lazy"
        return (f"LazyTrace(name={self.name!r}, events={len(self)}, "
                f"threads={self.num_threads}, {state})")


# --------------------------------------------------------------------------- #
# File I/O
# --------------------------------------------------------------------------- #
def _is_gzip_path(path: Union[str, Path]) -> bool:
    return str(path).endswith(".gz")


def write_trace_stc(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` as ``.stc`` (``.gz`` suffixes are
    compressed with the canonical zero-mtime gzip parameters, so output
    is byte-reproducible)."""
    payload = encode_trace(trace)
    if _is_gzip_path(path):
        payload = gzip.compress(payload, compresslevel=9, mtime=0)
    with open(path, "wb") as stream:
        stream.write(payload)


def read_trace_stc(path: Union[str, Path],
                   name: Optional[str] = None) -> LazyTrace:
    """Read an ``.stc`` file into a :class:`LazyTrace`.

    Plain files are memory-mapped and the column blobs copied out with
    ``array.frombytes`` (the map is not held open); gzip members --
    detected by content, not suffix -- are decompressed first.
    """
    with open(path, "rb") as stream:
        head = stream.read(2)
        stream.seek(0)
        if head == b"\x1f\x8b":
            try:
                data = gzip.decompress(stream.read())
            except (OSError, EOFError) as error:
                raise TraceFormatError(
                    f"cannot decompress {path}: {error}") from None
            return decode_trace(data, name=name)
        try:
            mapped = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:  # empty file cannot be mapped
            return decode_trace(b"", name=name)
        try:
            return decode_trace(mapped, name=name)
        finally:
            try:
                mapped.close()
            except BufferError:
                # A propagating decode error's traceback still pins
                # memoryviews over the map; the map closes when that
                # traceback is released.  Never mask the decode error.
                pass
