"""Trace statistics.

The paper characterises each benchmark by a handful of structural metrics --
thread count ``T``, event count ``N``, and the suffix-minima density ``q``
observed while maintaining the order.  This module computes those (and a few
more that are useful when designing workloads) directly from a trace, so
users can check that a synthetic workload matches the regime they care
about before spending time on an analysis run.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict

from repro.trace.event import EventKind
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceMetrics:
    """Structural summary of a trace."""

    name: str
    events: int                       #: total number of events (``N``)
    threads: int                      #: number of threads (``T``)
    max_thread_length: int            #: length of the longest chain
    variables: int                    #: distinct shared variables accessed
    locks: int                        #: distinct locks acquired
    reads: int
    writes: int
    lock_operations: int
    cross_thread_reads: int           #: reads whose observed writer is another thread
    critical_sections: int
    max_lock_nesting: int
    accesses_per_variable: float      #: mean accesses per shared variable
    communication_density: float      #: cross-thread reads-from edges per event

    def summary(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [
            f"trace {self.name}: {self.events} events, {self.threads} threads "
            f"(longest chain {self.max_thread_length})",
            f"  accesses: {self.reads} reads / {self.writes} writes over "
            f"{self.variables} variables "
            f"({self.accesses_per_variable:.1f} accesses/variable)",
            f"  synchronisation: {self.lock_operations} lock operations on "
            f"{self.locks} locks, {self.critical_sections} critical sections "
            f"(max nesting {self.max_lock_nesting})",
            f"  communication: {self.cross_thread_reads} cross-thread reads "
            f"(density {self.communication_density:.3f})",
        ]
        return "\n".join(lines)


def compute_metrics(trace: Trace) -> TraceMetrics:
    """Compute :class:`TraceMetrics` for ``trace`` in a single pass."""
    reads = writes = lock_operations = 0
    variables = set()
    locks = set()
    nesting: Dict[int, int] = defaultdict(int)
    max_nesting = 0
    access_counts: Counter = Counter()
    critical_sections = 0

    for event in trace:
        if event.is_access:
            variables.add(event.variable)
            access_counts[event.variable] += 1
            if event.is_read:
                reads += 1
            if event.is_write:
                writes += 1
        elif event.kind is EventKind.ACQUIRE:
            locks.add(event.variable)
            lock_operations += 1
            critical_sections += 1
            nesting[event.thread] += 1
            max_nesting = max(max_nesting, nesting[event.thread])
        elif event.kind is EventKind.RELEASE:
            lock_operations += 1
            nesting[event.thread] = max(0, nesting[event.thread] - 1)

    cross_thread_reads = sum(
        1
        for read, write in trace.reads_from().items()
        if write is not None and write.thread != read.thread
    )
    events = len(trace)
    return TraceMetrics(
        name=trace.name,
        events=events,
        threads=trace.num_threads,
        max_thread_length=trace.max_thread_length,
        variables=len(variables),
        locks=len(locks),
        reads=reads,
        writes=writes,
        lock_operations=lock_operations,
        cross_thread_reads=cross_thread_reads,
        critical_sections=critical_sections,
        max_lock_nesting=max_nesting,
        accesses_per_variable=(
            (reads + writes) / len(variables) if variables else 0.0
        ),
        communication_density=(cross_thread_reads / events if events else 0.0),
    )
