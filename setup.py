"""Packaging metadata.

The environment used for the reproduction ships an older setuptools without
PEP 660 editable-wheel support, so ``pip install -e .`` falls back to the
legacy ``setup.py develop`` path, which needs this file -- and therefore the
metadata lives here rather than in ``pyproject.toml``.
"""

from pathlib import Path

from setuptools import find_packages, setup

HERE = Path(__file__).parent

version: dict = {}
exec((HERE / "src" / "repro" / "_version.py").read_text(encoding="utf-8"),
     version)

readme = HERE / "README.md"

setup(
    name="repro-cssts",
    version=version["__version__"],
    description=("Reproduction of 'CSSTs: A Dynamic Data Structure for "
                 "Partial Orders in Concurrent Execution Analysis' "
                 "(ASPLOS 2024)"),
    long_description=readme.read_text(encoding="utf-8") if readme.exists() else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Software Development :: Testing",
    ],
)
