"""Setuptools shim.

The environment used for the reproduction ships an older setuptools without
PEP 660 editable-wheel support, so ``pip install -e .`` falls back to the
legacy ``setup.py develop`` path, which needs this file.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
